//! Out-of-core execution: the memory-budgeted spill pipeline.
//!
//! The paper's runtime assumes the intermediate set fits in RAM (a 384GB
//! box). A library adopted for "large batch computations" cannot: when
//! [`JobConfig::memory_budget`](crate::runtime::JobConfig::memory_budget)
//! is set, the runtime meters the intermediate container with a
//! [`MemoryAccountant`] and, under pressure, drains its hottest regions
//! into sorted, partition-tagged run files on disk (the Salzberg
//! external-sort discipline `supmr-merge` already implements). The
//! reduce phase then switches to a streaming external p-way merge of
//! each partition's spilled runs plus its in-memory remainder — one
//! pass, no run read twice.
//!
//! Division of labor:
//!
//! * [`MemoryAccountant`] — a lock-free byte ledger with high/low
//!   watermarks. Containers charge it as pairs land and ask "am I over?"
//!   with one relaxed atomic read.
//! * [`PairCodec`] — how an application's `(key, accumulator)` pairs
//!   cross the byte boundary ([`MapReduce::spill_codec`]). Plain
//!   function pointers, so the codec is `Copy` and free to clone into
//!   every worker.
//! * [`SpillHooks`] — the wiring a container receives via
//!   [`Container::configure_spill`]: the accountant, the job's reduce
//!   partition count (so spilled runs carry final partition tags), and
//!   the sink that turns a drained batch into a run file.
//! * [`JobSpill`] — the job-level sink behind that hook: sorts each
//!   batch, frames it through [`RunWriter`] onto the configured
//!   [`RunStore`] (so `--throttle` pacing and [`IngestMeter`]
//!   observation apply to spill traffic), guards every run file with a
//!   [`RunGuard`], and parks I/O errors for the runtime to surface as
//!   typed [`SupmrError`]s — the sink itself never panics the map wave.
//!
//! [`MapReduce::spill_codec`]: crate::api::MapReduce::spill_codec
//! [`Container::configure_spill`]: crate::container::Container::configure_spill
//! [`IngestMeter`]: supmr_storage::IngestMeter
//! [`SupmrError`]: crate::error::SupmrError

use parking_lot::Mutex;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use supmr_merge::{RunReadError, RunReader, RunWriter};
use supmr_metrics::{
    Counter, EventKind, FlowLedger, FlowPhase, Gauge, Histogram, Registry, Tracer,
};
use supmr_storage::{RunGuard, RunStore};

/// A lock-cheap byte ledger for the intermediate set.
///
/// `charge` and `release` are single relaxed atomic ops; the watermarks
/// turn the ledger into a hysteresis controller: containers start
/// spilling when residency exceeds the **high** watermark (80% of the
/// budget) and drain until they fall below the **low** watermark (50%),
/// so one borderline insert does not cause a storm of tiny runs.
#[derive(Debug)]
pub struct MemoryAccountant {
    /// Atomic so a multi-tenant host can re-partition a global budget
    /// across live jobs mid-run ([`MemoryAccountant::set_budget`]).
    budget: AtomicU64,
    /// Watermarks are atomic so the feedback governor can tighten them
    /// mid-job (a pre-emptive drain lowers `low` to flush deeper).
    high: AtomicU64,
    low: AtomicU64,
    resident: AtomicU64,
    /// Live mirror of `resident` (`supmr.spill.resident_bytes`).
    gauge: Option<Gauge>,
}

impl MemoryAccountant {
    /// A ledger over `budget` bytes (high = 80%, low = 50%).
    pub fn new(budget: u64) -> MemoryAccountant {
        MemoryAccountant {
            budget: AtomicU64::new(budget),
            high: AtomicU64::new((budget / 5 * 4).max(1)),
            low: AtomicU64::new((budget / 2).max(1)),
            resident: AtomicU64::new(0),
            gauge: None,
        }
    }

    /// Mirror residency into `gauge` on every charge/release.
    pub fn with_gauge(mut self, gauge: Gauge) -> MemoryAccountant {
        self.gauge = Some(gauge);
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Re-point the ledger at a new budget, recomputing both watermarks
    /// at their default ratios (high = 80%, low = 50%). The resident
    /// count is untouched: if the new budget is smaller than what is
    /// already charged, the next `charge` reports over-high and the
    /// container spills its way down — shrinking a tenant's share never
    /// fails the job, it just makes it spill.
    pub fn set_budget(&self, budget: u64) {
        self.budget.store(budget, Ordering::Relaxed);
        self.high.store((budget / 5 * 4).max(1), Ordering::Relaxed);
        self.low.store((budget / 2).max(1), Ordering::Relaxed);
    }

    /// The current high watermark (start spilling above this).
    pub fn high(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }

    /// The current low watermark (drain down to this).
    pub fn low(&self) -> u64 {
        self.low.load(Ordering::Relaxed)
    }

    /// Move the low watermark — the governor's pre-emptive-drain lever.
    /// Clamped to at least 1 and at most the high watermark so the
    /// hysteresis band never inverts.
    pub fn set_low(&self, low: u64) {
        self.low.store(low.clamp(1, self.high()), Ordering::Relaxed);
    }

    /// Record `bytes` landing in memory. Returns `true` when residency
    /// is now above the high watermark (the caller should spill).
    pub fn charge(&self, bytes: u64) -> bool {
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(g) = &self.gauge {
            g.set(now.min(i64::MAX as u64) as i64);
        }
        now > self.high()
    }

    /// Record `bytes` leaving memory (spilled or dropped).
    pub fn release(&self, bytes: u64) {
        // Saturating: estimates can drift under concurrency, and a
        // ledger that wraps negative would spill forever.
        let mut now = self.resident.load(Ordering::Relaxed);
        loop {
            let next = now.saturating_sub(bytes);
            match self.resident.compare_exchange_weak(
                now,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if let Some(g) = &self.gauge {
                        g.set(next.min(i64::MAX as u64) as i64);
                    }
                    return;
                }
                Err(seen) => now = seen,
            }
        }
    }

    /// Bytes currently charged.
    pub fn resident(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Whether residency still exceeds the low watermark (keep
    /// spilling).
    pub fn over_low(&self) -> bool {
        self.resident() > self.low()
    }

    /// Whether residency exceeds the high watermark (start spilling).
    pub fn over_high(&self) -> bool {
        self.resident() > self.high()
    }
}

/// How one application's `(key, accumulator)` pairs cross the byte
/// boundary into run files and back.
///
/// Function pointers rather than a trait object: the codec is `Copy`,
/// has no state, and clones into every map worker and reduce task for
/// free.
pub struct PairCodec<K, A> {
    /// Append the encoding of one pair to `buf` (cleared by the caller).
    pub encode: fn(&K, &A, &mut Vec<u8>),
    /// Decode one record; `None` marks an undecodable record (surfaced
    /// as [`SupmrError::Merge`](crate::error::SupmrError::Merge)).
    pub decode: fn(&[u8]) -> Option<(K, A)>,
    /// Approximate in-memory footprint of one pair, for the accountant.
    pub size_hint: fn(&K, &A) -> usize,
}

impl<K, A> Clone for PairCodec<K, A> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<K, A> Copy for PairCodec<K, A> {}

impl<K, A> std::fmt::Debug for PairCodec<K, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairCodec").finish_non_exhaustive()
    }
}

/// Turn one drained batch into a sorted run file tagged with its
/// partition ([`SpillHooks::sink`]).
pub type SpillSink<K, A> = Arc<dyn Fn(usize, Vec<(K, A)>) + Send + Sync>;

/// The wiring a container receives when the job runs under a memory
/// budget ([`Container::configure_spill`]).
///
/// [`Container::configure_spill`]: crate::container::Container::configure_spill
pub struct SpillHooks<K, A> {
    /// The job's byte ledger. Charge as pairs land, release as they
    /// spill; a `true` from [`MemoryAccountant::charge`] means drain.
    pub accountant: Arc<MemoryAccountant>,
    /// The job's reduce partition count. Spilled batches must carry the
    /// partition index their keys will reduce in, computed the same way
    /// the container's `into_drains(partitions)` would place them.
    pub partitions: usize,
    /// The codec's footprint estimator, for charging the ledger.
    pub size_hint: fn(&K, &A) -> usize,
    /// Turn one drained batch into a sorted run file tagged with its
    /// partition. Never panics; I/O errors are parked on the job.
    pub sink: SpillSink<K, A>,
}

impl<K, A> Clone for SpillHooks<K, A> {
    fn clone(&self) -> Self {
        SpillHooks {
            accountant: Arc::clone(&self.accountant),
            partitions: self.partitions,
            size_hint: self.size_hint,
            sink: Arc::clone(&self.sink),
        }
    }
}

impl<K, A> std::fmt::Debug for SpillHooks<K, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillHooks")
            .field("budget", &self.accountant.budget())
            .field("partitions", &self.partitions)
            .finish_non_exhaustive()
    }
}

/// Handles into the `supmr.spill.*` metric families.
#[derive(Debug, Clone)]
pub struct SpillMetrics {
    /// `supmr.spill.runs` — run files written.
    pub runs: Counter,
    /// `supmr.spill.bytes` — framed bytes written into run files.
    pub bytes: Counter,
    /// `supmr.spill.drain_us` — per-run spill latency (sort + encode +
    /// write), microseconds.
    pub drain_us: Histogram,
    /// `supmr.spill.merge_us` — per-partition external merge latency,
    /// microseconds.
    pub merge_us: Histogram,
    /// `supmr.spill.budget_bytes` — the configured memory budget.
    pub budget_bytes: Gauge,
    /// `supmr.spill.resident_bytes` — bytes currently charged to the
    /// ledger.
    pub resident_bytes: Gauge,
}

impl SpillMetrics {
    /// Register (or re-attach to) the spill families in `registry`.
    pub fn register(registry: &Registry) -> Arc<SpillMetrics> {
        Arc::new(SpillMetrics {
            runs: registry.counter(
                "supmr.spill.runs",
                "Sorted run files spilled under memory pressure.",
                &[],
            ),
            bytes: registry.counter(
                "supmr.spill.bytes",
                "Framed bytes written into spill run files.",
                &[],
            ),
            drain_us: registry.histogram(
                "supmr.spill.drain_us",
                "Per-run spill latency (sort + encode + write), microseconds.",
                &[],
            ),
            merge_us: registry.histogram(
                "supmr.spill.merge_us",
                "Per-partition external merge latency, microseconds.",
                &[],
            ),
            budget_bytes: registry.gauge(
                "supmr.spill.budget_bytes",
                "Configured intermediate-memory budget, bytes.",
                &[],
            ),
            resident_bytes: registry.gauge(
                "supmr.spill.resident_bytes",
                "Intermediate bytes currently charged to the memory ledger.",
                &[],
            ),
        })
    }
}

/// One spilled run: a sorted, checksummed record file on the store,
/// deleted by its guard when the merge is done with it.
#[allow(dead_code)] // `guard` acts through Drop; counts are inventory metadata
pub(crate) struct SpilledRun {
    /// Reduce partition whose keys this run holds.
    pub partition: usize,
    /// Name under the job's [`RunStore`].
    pub name: String,
    /// Records in the run.
    pub records: u64,
    /// Framed bytes in the run.
    pub bytes: u64,
    /// Deletes the run file on drop.
    pub guard: RunGuard,
}

/// Per-job spill state: the sink behind [`SpillHooks::sink`] plus the
/// run inventory the reduce phase merges.
pub struct JobSpill<K, A> {
    accountant: Arc<MemoryAccountant>,
    codec: PairCodec<K, A>,
    store: Arc<dyn RunStore>,
    runs: Mutex<Vec<SpilledRun>>,
    /// First I/O error hit while writing a run; surfaced by the runtime
    /// as [`SupmrError::Ingest`](crate::error::SupmrError::Ingest) at
    /// the next phase boundary.
    error: Mutex<Option<io::Error>>,
    seq: AtomicU64,
    runs_total: AtomicU64,
    bytes_total: AtomicU64,
    metrics: Option<Arc<SpillMetrics>>,
    tracer: Tracer,
    /// A temp directory the runtime created for this job, removed (if
    /// empty) when the spill state drops.
    cleanup_dir: Option<PathBuf>,
    /// Run-name prefix — pipeline stages sharing one explicit store
    /// prefix their runs with the stage index so names never collide.
    run_prefix: String,
    /// The job's bandwidth ledger; each run write records its framed
    /// bytes against the spill phase (unless a flow-attributed store
    /// meter already owns that phase).
    flow: Option<Arc<FlowLedger>>,
}

impl<K, A> JobSpill<K, A>
where
    K: Ord + Send + Sync + 'static,
    A: Send + Sync + 'static,
{
    /// Assemble the job's spill state.
    #[allow(clippy::too_many_arguments)] // internal plumbing, one call site
    pub(crate) fn new(
        accountant: Arc<MemoryAccountant>,
        codec: PairCodec<K, A>,
        store: Arc<dyn RunStore>,
        metrics: Option<Arc<SpillMetrics>>,
        tracer: Tracer,
        cleanup_dir: Option<PathBuf>,
        run_prefix: String,
        flow: Option<Arc<FlowLedger>>,
    ) -> JobSpill<K, A> {
        JobSpill {
            accountant,
            codec,
            store,
            runs: Mutex::new(Vec::new()),
            error: Mutex::new(None),
            seq: AtomicU64::new(0),
            runs_total: AtomicU64::new(0),
            bytes_total: AtomicU64::new(0),
            metrics,
            tracer,
            cleanup_dir,
            run_prefix,
            flow,
        }
    }

    /// The job's byte ledger.
    pub fn accountant(&self) -> &Arc<MemoryAccountant> {
        &self.accountant
    }

    /// The codec pairs cross the byte boundary with.
    pub(crate) fn codec(&self) -> PairCodec<K, A> {
        self.codec
    }

    /// The store runs live on.
    pub(crate) fn store(&self) -> Arc<dyn RunStore> {
        Arc::clone(&self.store)
    }

    /// The spill metric handles, when a registry is attached.
    pub(crate) fn metrics(&self) -> Option<Arc<SpillMetrics>> {
        self.metrics.clone()
    }

    /// Runs written so far.
    pub fn runs_written(&self) -> u64 {
        self.runs_total.load(Ordering::Relaxed)
    }

    /// Framed bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_total.load(Ordering::Relaxed)
    }

    /// Sink one drained batch as a sorted run tagged `partition`.
    ///
    /// Called from map workers mid-wave (via [`SpillHooks::sink`]), so
    /// it must not panic: I/O failures are parked and the batch is
    /// dropped — the job fails with the parked error at the next phase
    /// boundary, exactly like an ingest fault.
    pub(crate) fn spill_partition(&self, partition: usize, mut pairs: Vec<(K, A)>) {
        if pairs.is_empty() {
            return;
        }
        let run_id = self.seq.fetch_add(1, Ordering::Relaxed);
        let task_spans = self.tracer.level().tasks();
        if task_spans {
            self.tracer.emit(EventKind::SpillRunStart { run: run_id, partition: partition as u64 });
        }
        let t0 = Instant::now();
        let name = format!("{}run-{partition:03}-{run_id:06}", self.run_prefix);
        let result = (|| -> io::Result<(u64, u64)> {
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            let mut writer = RunWriter::from_writer(self.store.create(&name)?);
            let mut buf = Vec::new();
            for (k, a) in &pairs {
                buf.clear();
                (self.codec.encode)(k, a, &mut buf);
                writer.push(&buf)?;
            }
            let (records, bytes) = (writer.records(), writer.bytes());
            writer.finish()?;
            Ok((records, bytes))
        })();
        // The guard exists either way: on failure its drop removes the
        // partial file, on success it travels with the run inventory.
        let guard = RunGuard::new(Arc::clone(&self.store), &name);
        let (records, bytes) = match result {
            Ok(counts) => counts,
            Err(e) => {
                self.error.lock().get_or_insert(e);
                if task_spans {
                    self.tracer.emit(EventKind::SpillRunEnd { run: run_id, records: 0, bytes: 0 });
                }
                return;
            }
        };
        self.runs_total.fetch_add(1, Ordering::Relaxed);
        self.bytes_total.fetch_add(bytes, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.runs.inc();
            m.bytes.add(bytes);
            m.drain_us.record_duration_us(t0.elapsed());
        }
        if let Some(f) = &self.flow {
            f.record_owned(FlowPhase::Spill, bytes, t0.elapsed());
        }
        if task_spans {
            self.tracer.emit(EventKind::SpillRunEnd { run: run_id, records, bytes });
        }
        self.runs.lock().push(SpilledRun { partition, name, records, bytes, guard });
    }

    /// Surface any parked run-write error.
    pub(crate) fn check(&self) -> io::Result<()> {
        match self.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Take the run inventory (the reduce phase consumes it once).
    pub(crate) fn take_runs(&self) -> Vec<SpilledRun> {
        std::mem::take(&mut *self.runs.lock())
    }
}

impl<K, A> Drop for JobSpill<K, A> {
    fn drop(&mut self) {
        if let Some(dir) = &self.cleanup_dir {
            // Guards have removed the run files by now; only an empty
            // directory is removed, and failure is not an error.
            let _ = std::fs::remove_dir(dir);
        }
    }
}

/// Streams one spilled run back as decoded pairs.
///
/// Iterators cannot return `Result`, so read/decode failures park a
/// message in the shared `error` slot and end the stream; the merge
/// driver checks the slot after iteration (the same deferred-error
/// pattern as [`RunReader`] itself).
pub(crate) struct DecodedRun<K, A> {
    reader: RunReader<io::BufReader<Box<dyn io::Read + Send>>>,
    decode: fn(&[u8]) -> Option<(K, A)>,
    name: String,
    error: Arc<Mutex<Option<String>>>,
}

impl<K, A> DecodedRun<K, A> {
    pub(crate) fn open(
        store: &dyn RunStore,
        name: &str,
        decode: fn(&[u8]) -> Option<(K, A)>,
        error: Arc<Mutex<Option<String>>>,
    ) -> io::Result<DecodedRun<K, A>> {
        let input = store.open(name)?;
        Ok(DecodedRun {
            reader: RunReader::from_reader(io::BufReader::new(input)),
            decode,
            name: name.to_string(),
            error,
        })
    }

    fn park(&self, detail: String) {
        self.error.lock().get_or_insert(detail);
    }
}

impl<K, A> Iterator for DecodedRun<K, A> {
    type Item = (K, A);

    fn next(&mut self) -> Option<(K, A)> {
        match self.reader.next() {
            Some(record) => match (self.decode)(&record) {
                Some(pair) => Some(pair),
                None => {
                    self.park(format!("undecodable record in spill run {}", self.name));
                    None
                }
            },
            None => {
                if let Some(e) = self.reader.take_error() {
                    let what = if matches!(e, RunReadError::Corrupt { .. }) {
                        "corrupt"
                    } else {
                        "unreadable"
                    };
                    self.park(format!("spill run {} {what}: {e}", self.name));
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supmr_metrics::TraceLevel;
    use supmr_storage::MemRunStore;

    fn u64_codec() -> PairCodec<u64, u64> {
        PairCodec {
            encode: |k, a, buf| {
                buf.extend_from_slice(&k.to_le_bytes());
                buf.extend_from_slice(&a.to_le_bytes());
            },
            decode: |rec| {
                if rec.len() != 16 {
                    return None;
                }
                let k = u64::from_le_bytes(rec[..8].try_into().unwrap());
                let a = u64::from_le_bytes(rec[8..].try_into().unwrap());
                Some((k, a))
            },
            size_hint: |_, _| 16,
        }
    }

    #[test]
    fn accountant_watermarks_hysteresis() {
        let a = MemoryAccountant::new(1000);
        assert!(!a.charge(700), "below high");
        assert!(a.charge(200), "900 > 800 high watermark");
        assert!(a.over_low());
        a.release(500);
        assert!(!a.over_low(), "400 < 500 low watermark");
        assert_eq!(a.resident(), 400);
        a.release(10_000);
        assert_eq!(a.resident(), 0, "release saturates at zero");
    }

    #[test]
    fn accountant_mirrors_a_gauge() {
        let g = Gauge::new();
        let a = MemoryAccountant::new(100).with_gauge(g.clone());
        a.charge(60);
        assert_eq!(g.value(), 60);
        a.release(25);
        assert_eq!(g.value(), 35);
    }

    #[test]
    fn spill_round_trips_sorted_runs() {
        let store = MemRunStore::new();
        let spill = JobSpill::new(
            Arc::new(MemoryAccountant::new(1024)),
            u64_codec(),
            Arc::new(store.clone()),
            None,
            Tracer::new(TraceLevel::Off, None),
            None,
            String::new(),
            None,
        );
        spill.spill_partition(3, vec![(9, 1), (2, 2), (5, 3)]);
        assert_eq!(spill.runs_written(), 1);
        let runs = spill.take_runs();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].partition, 3);
        assert_eq!(runs[0].records, 3);
        let err = Arc::new(Mutex::new(None));
        let decoded: Vec<(u64, u64)> =
            DecodedRun::open(&store, &runs[0].name, u64_codec().decode, Arc::clone(&err))
                .unwrap()
                .collect();
        assert_eq!(decoded, vec![(2, 2), (5, 3), (9, 1)], "run is key-sorted");
        assert!(err.lock().is_none());
        drop(runs);
        assert!(store.is_empty(), "guards delete runs on drop");
    }

    #[test]
    fn empty_batches_write_nothing() {
        let store = MemRunStore::new();
        let spill = JobSpill::new(
            Arc::new(MemoryAccountant::new(1024)),
            u64_codec(),
            Arc::new(store.clone()),
            None,
            Tracer::new(TraceLevel::Off, None),
            None,
            String::new(),
            None,
        );
        spill.spill_partition(0, Vec::new());
        assert_eq!(spill.runs_written(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn write_faults_are_parked_not_panicked() {
        use supmr_storage::FaultyRunStore;
        let inner = MemRunStore::new();
        let store = FaultyRunStore::fail_writes_after(
            Arc::new(inner.clone()),
            4,
            io::ErrorKind::StorageFull,
        );
        let spill = JobSpill::new(
            Arc::new(MemoryAccountant::new(1024)),
            u64_codec(),
            Arc::new(store),
            None,
            Tracer::new(TraceLevel::Off, None),
            None,
            String::new(),
            None,
        );
        spill.spill_partition(0, vec![(1, 1), (2, 2)]);
        assert_eq!(spill.runs_written(), 0);
        let err = spill.check().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(spill.check().is_ok(), "error surfaces once");
        assert!(spill.take_runs().is_empty());
        assert!(inner.is_empty(), "partial run removed by the failure guard");
    }

    #[test]
    fn decode_failures_park_a_message() {
        let store = MemRunStore::new();
        {
            let mut w = RunWriter::from_writer(store.create("bad").unwrap());
            w.push(b"not sixteen bytes long!").unwrap();
            w.finish().unwrap();
        }
        let err = Arc::new(Mutex::new(None));
        let decoded: Vec<(u64, u64)> =
            DecodedRun::open(&store, "bad", u64_codec().decode, Arc::clone(&err))
                .unwrap()
                .collect();
        assert!(decoded.is_empty());
        let msg = err.lock().clone().expect("decode failure parked");
        assert!(msg.contains("undecodable"), "{msg}");
    }
}
