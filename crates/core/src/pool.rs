//! Wave-based task execution.
//!
//! Phoenix++ launches mapper/reducer threads in *waves*: a wave starts a
//! set of worker threads, the workers drain a task queue, and the wave
//! ends when every task is done and the threads are destroyed. SupMR's
//! ingest pipeline "starts mapper threads multiple times to operate on
//! new chunks as they arrive", so thread start/stop costs recur once per
//! ingest chunk — the overhead the paper's chunk-size discussion (§III-A2,
//! Conclusion 2) is about. [`run_wave`] reproduces exactly that lifecycle
//! (real spawn + join per wave) and reports how many threads were
//! started, so that overhead is observable in experiments.

use parking_lot::Mutex;

/// What a completed wave did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveOutcome {
    /// Tasks executed.
    pub tasks: u64,
    /// Worker threads spawned (and destroyed) for the wave.
    pub threads_spawned: u64,
}

/// Run `tasks` to completion on a wave of at most `workers` fresh
/// threads. Each task is passed to `f` together with its index in the
/// original order. Blocks until the wave ends.
///
/// Spawns `min(workers, tasks.len())` threads; zero tasks spawn nothing.
/// A panic inside any task propagates after the wave joins.
///
/// # Panics
/// Panics if `workers == 0` and there is at least one task.
pub fn run_wave<T, F>(workers: usize, tasks: Vec<T>, f: F) -> WaveOutcome
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let task_count = tasks.len() as u64;
    if tasks.is_empty() {
        return WaveOutcome::default();
    }
    assert!(workers > 0, "a wave needs at least one worker");
    let thread_count = workers.min(tasks.len());

    let queue = Mutex::new(tasks.into_iter().enumerate());
    std::thread::scope(|scope| {
        for _ in 0..thread_count {
            scope.spawn(|| loop {
                // Hold the lock only for the pop, not the task body.
                let next = queue.lock().next();
                match next {
                    Some((idx, task)) => f(idx, task),
                    None => break,
                }
            });
        }
    });

    WaveOutcome { tasks: task_count, threads_spawned: thread_count as u64 }
}

/// Run a wave whose tasks each produce a value; results come back in
/// task order.
pub fn run_wave_collect<T, R, F>(workers: usize, tasks: Vec<T>, f: F) -> (Vec<R>, WaveOutcome)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = tasks.len();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let outcome = run_wave(workers, tasks, |idx, task| {
        *slots[idx].lock() = Some(f(idx, task));
    });
    let results = slots
        .into_iter()
        .map(|s| s.into_inner().expect("wave task did not store a result"))
        .collect();
    (results, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn wave_runs_every_task_exactly_once() {
        let hits = AtomicU64::new(0);
        let outcome = run_wave(4, (0..100).collect(), |_, _x: i32| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(outcome.tasks, 100);
        assert_eq!(outcome.threads_spawned, 4);
    }

    #[test]
    fn empty_wave_spawns_nothing() {
        let outcome = run_wave(8, Vec::<u8>::new(), |_, _| panic!("no tasks"));
        assert_eq!(outcome, WaveOutcome::default());
    }

    #[test]
    fn thread_count_capped_by_task_count() {
        let outcome = run_wave(64, vec![1, 2, 3], |_, _| {});
        assert_eq!(outcome.threads_spawned, 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_with_tasks_panics() {
        run_wave(0, vec![1], |_, _| {});
    }

    #[test]
    fn collect_preserves_task_order() {
        let (results, outcome) =
            run_wave_collect(3, (0u64..50).collect(), |idx, x| (idx as u64) * 1000 + x * 2);
        assert_eq!(outcome.tasks, 50);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, (i as u64) * 1000 + (i as u64) * 2);
        }
    }

    #[test]
    fn tasks_see_their_original_index() {
        let (results, _) = run_wave_collect(4, vec!["a", "b", "c"], |idx, s| format!("{idx}{s}"));
        assert_eq!(results, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn task_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            run_wave(2, vec![1, 2, 3], |_, x: i32| {
                if x == 2 {
                    panic!("task exploded");
                }
            });
        });
        assert!(result.is_err(), "a panicking task must fail the wave");
    }

    #[test]
    fn waves_are_reentrant_from_tasks() {
        // A wave inside a wave (the pipeline nests reduce waves inside
        // scoped ingest threads).
        let total = AtomicU64::new(0);
        run_wave(2, vec![10u64, 20], |_, n| {
            run_wave(2, (0..n).collect(), |_, _| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 30);
    }
}
