//! Wave-based and pooled task execution.
//!
//! Phoenix++ launches mapper/reducer threads in *waves*: a wave starts a
//! set of worker threads, the workers drain a task queue, and the wave
//! ends when every task is done and the threads are destroyed. SupMR's
//! ingest pipeline "starts mapper threads multiple times to operate on
//! new chunks as they arrive", so thread start/stop costs recur once per
//! ingest chunk — the overhead the paper's chunk-size discussion (§III-A2,
//! Conclusion 2) is about. [`run_wave`] reproduces exactly that lifecycle
//! (real spawn + join per wave) and reports how many threads were
//! started, so that overhead is observable in experiments.
//!
//! [`WorkerPool`] is the avoidable version of the same cost: a set of
//! long-lived threads created once per job that dispatch map *and*
//! reduce tasks over a channel. [`PoolMode`] selects between the two at
//! the [`JobConfig`](crate::runtime::JobConfig) level, and
//! [`WaveOutcome::threads_reused`] quantifies the spawns a pooled wave
//! avoided, so ablations can put a number on the paper's overhead.

use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use supmr_metrics::{Counter, EventKind, Gauge, Histogram, Registry, Tracer};

/// How the runtime provisions worker threads for map/reduce waves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PoolMode {
    /// Spawn and join a fresh set of threads per wave (the Phoenix++
    /// lifecycle the paper measures). The default, so the per-chunk
    /// thread overhead of §III-A2 stays observable.
    #[default]
    WavePerRound,
    /// One long-lived pool of threads created at job start dispatches
    /// every map and reduce task over a channel; no spawns after setup.
    Persistent,
}

impl std::fmt::Display for PoolMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolMode::WavePerRound => write!(f, "wave"),
            PoolMode::Persistent => write!(f, "persistent"),
        }
    }
}

/// What a completed wave did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveOutcome {
    /// Tasks executed.
    pub tasks: u64,
    /// Worker threads spawned (and destroyed) for the wave.
    pub threads_spawned: u64,
    /// Pre-existing pool threads the wave dispatched to instead of
    /// spawning — the spawn/join cost a persistent pool saved.
    pub threads_reused: u64,
}

/// Run `tasks` to completion on a wave of at most `workers` fresh
/// threads. Each task is passed to `f` together with its index in the
/// original order. Blocks until the wave ends.
///
/// Spawns `min(workers, tasks.len())` threads; zero tasks spawn nothing.
/// A panic inside any task propagates after the wave joins.
///
/// # Panics
/// Panics if `workers == 0` and there is at least one task.
pub fn run_wave<T, F>(workers: usize, tasks: Vec<T>, f: F) -> WaveOutcome
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let task_count = tasks.len() as u64;
    if tasks.is_empty() {
        return WaveOutcome::default();
    }
    assert!(workers > 0, "a wave needs at least one worker");
    let thread_count = workers.min(tasks.len());

    let queue = Mutex::new(tasks.into_iter().enumerate());
    std::thread::scope(|scope| {
        for _ in 0..thread_count {
            scope.spawn(|| loop {
                // Hold the lock only for the pop, not the task body.
                let next = queue.lock().next();
                match next {
                    Some((idx, task)) => f(idx, task),
                    None => break,
                }
            });
        }
    });

    WaveOutcome { tasks: task_count, threads_spawned: thread_count as u64, threads_reused: 0 }
}

/// Run a wave whose tasks each produce a value; results come back in
/// task order.
///
/// Slots are index-disjoint, so no per-slot lock is needed: workers send
/// `(index, result)` over a channel and the caller places each result at
/// its index after the wave joins.
pub fn run_wave_collect<T, R, F>(workers: usize, tasks: Vec<T>, f: F) -> (Vec<R>, WaveOutcome)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = tasks.len();
    let (tx, rx) = crossbeam_channel::bounded::<(usize, R)>(n.max(1));
    let outcome = run_wave(workers, tasks, |idx, task| {
        let result = f(idx, task);
        tx.send((idx, result)).expect("wave outlives its result channel");
    });
    drop(tx);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (idx, result) in rx {
        slots[idx] = Some(result);
    }
    let results = slots.into_iter().map(|s| s.expect("wave task did not store a result")).collect();
    (results, outcome)
}

/// Live instrumentation handles for a [`WorkerPool`], registered under
/// the `supmr.pool.*` families of a [`Registry`].
///
/// Queue depth and in-flight levels are maintained through RAII
/// [`supmr_metrics::GaugeGuard`]s held by the task closures themselves,
/// so a panicking task (surfaced to callers as
/// [`SupmrError::TaskPanic`](crate::SupmrError::TaskPanic)) restores
/// both gauges during unwinding instead of skewing them for the rest of
/// the job.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    /// Tasks enqueued to the pool but not yet picked up by a worker.
    pub queue_depth: Gauge,
    /// Tasks currently executing on a worker thread.
    pub in_flight: Gauge,
    /// Enqueue→start dispatch latency, microseconds.
    pub dispatch_us: Histogram,
    /// Pool threads a batch dispatched to instead of spawning.
    pub threads_reused: Counter,
}

impl PoolMetrics {
    /// Register (or re-attach to) the `supmr.pool.*` families.
    pub fn register(registry: &Registry) -> PoolMetrics {
        PoolMetrics {
            queue_depth: registry.gauge(
                "supmr.pool.queue_depth",
                "Tasks enqueued to the persistent pool awaiting a worker.",
                &[],
            ),
            in_flight: registry.gauge(
                "supmr.pool.in_flight",
                "Tasks currently executing on pool worker threads.",
                &[],
            ),
            dispatch_us: registry.histogram(
                "supmr.pool.dispatch_us",
                "Latency from task enqueue to execution start, microseconds.",
                &[],
            ),
            threads_reused: registry.counter(
                "supmr.pool.threads_reused",
                "Pool threads batches dispatched to instead of spawning.",
                &[],
            ),
        }
    }
}

/// One unit of work queued to the pool.
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads.
///
/// Threads are spawned once in [`WorkerPool::new`] and live until the
/// pool is dropped; [`run_collect`](WorkerPool::run_collect) dispatches
/// a batch of tasks over a channel and blocks until all of them finish.
/// A panic inside any task is caught on the worker (keeping the thread
/// alive for later waves) and re-raised on the caller after the batch
/// drains, mirroring [`run_wave`]'s propagation semantics.
pub struct WorkerPool {
    tx: Option<crossbeam_channel::Sender<PoolTask>>,
    workers: Vec<JoinHandle<()>>,
    tracer: Tracer,
    metrics: Option<PoolMetrics>,
}

impl WorkerPool {
    /// Spawn `size` long-lived worker threads.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> WorkerPool {
        WorkerPool::new_traced(size, Tracer::off())
    }

    /// Spawn `size` long-lived worker threads that report each batch
    /// dispatch ([`EventKind::PoolDispatch`]) to `tracer`.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new_traced(size: usize, tracer: Tracer) -> WorkerPool {
        WorkerPool::new_instrumented(size, tracer, None)
    }

    /// Spawn `size` long-lived worker threads with optional tracing and
    /// live metrics ([`PoolMetrics`]).
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new_instrumented(
        size: usize,
        tracer: Tracer,
        metrics: Option<PoolMetrics>,
    ) -> WorkerPool {
        assert!(size > 0, "a worker pool needs at least one thread");
        let (tx, rx) = crossbeam_channel::unbounded::<PoolTask>();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("supmr-pool-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers, tracer, metrics }
    }

    /// Number of threads in the pool.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Dispatch `tasks` to the pool and block until all complete.
    /// Results come back in task order. A panicking task fails the batch
    /// (the panic is re-raised here after every task has settled), but
    /// the pool itself stays usable for subsequent batches.
    pub fn run_collect<T, R, F>(&self, tasks: Vec<T>, f: F) -> (Vec<R>, WaveOutcome)
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        self.run_collect_capped(self.size(), tasks, f)
    }

    /// [`run_collect`](WorkerPool::run_collect) with batch concurrency
    /// capped at `cap` tasks, even when the pool has more threads — how
    /// a dynamically narrowed wave width reaches a persistent pool. The
    /// gate is a token channel: each task takes a token before running
    /// and returns it after, so at most `cap` bodies execute at once
    /// while surplus workers block cheaply. Caps at or above the pool
    /// size cost nothing.
    ///
    /// # Panics
    /// Panics if `cap == 0` and there is at least one task.
    pub fn run_collect_capped<T, R, F>(
        &self,
        cap: usize,
        tasks: Vec<T>,
        f: F,
    ) -> (Vec<R>, WaveOutcome)
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return (Vec::new(), WaveOutcome::default());
        }
        assert!(cap > 0, "a pooled batch needs at least one worker");
        let effective = cap.min(self.size());
        self.tracer.emit(EventKind::PoolDispatch { tasks: n as u64, workers: effective as u64 });
        let gate = (effective < self.size().min(n)).then(|| {
            let (gtx, grx) = crossbeam_channel::bounded::<()>(effective);
            for _ in 0..effective {
                gtx.send(()).expect("filling a fresh token channel");
            }
            Arc::new((gtx, grx))
        });
        let f = Arc::new(f);
        let (rtx, rrx) = crossbeam_channel::bounded::<(usize, std::thread::Result<R>)>(n);
        let tx = self.tx.as_ref().expect("pool channel lives as long as the pool");
        for (idx, task) in tasks.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let rtx = rtx.clone();
            let gate = gate.clone();
            // RAII: the queued guard travels inside the closure, so the
            // queue-depth gauge is restored when the task starts — or
            // when an undelivered closure is dropped — never skewed.
            let metrics = self.metrics.clone();
            let queued = metrics.as_ref().map(|m| (m.queue_depth.track(1), Instant::now()));
            let body: PoolTask = Box::new(move || {
                let token = gate
                    .as_ref()
                    .map(|g| g.1.recv().expect("token channel lives for the whole batch"));
                let running = metrics.as_ref().map(|m| m.in_flight.track(1));
                if let (Some(m), Some((guard, enqueued))) = (&metrics, queued) {
                    drop(guard);
                    m.dispatch_us.record_duration_us(enqueued.elapsed());
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(idx, task)));
                // Release this task's handle on `f` (and everything it
                // captures) *before* reporting completion, so that once
                // the caller has drained all n results, dropping its own
                // `f` provably leaves no other owner.
                drop(f);
                drop(running);
                // The token goes back even for a panicked body (the
                // unwind was caught above), so the gate cannot starve.
                if let (Some(g), Some(())) = (&gate, token) {
                    let _ = g.0.send(());
                }
                let _ = rtx.send((idx, result));
            });
            tx.send(body).expect("pool workers outlive dispatched batches");
        }
        drop(rtx);

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut panic_payload = None;
        // Drain every result even after a panic so the batch fully
        // settles before the caller unwinds.
        for (idx, result) in rrx {
            match result {
                Ok(value) => slots[idx] = Some(value),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        let results =
            slots.into_iter().map(|s| s.expect("pool task did not store a result")).collect();
        let outcome = WaveOutcome {
            tasks: n as u64,
            threads_spawned: 0,
            threads_reused: effective.min(n) as u64,
        };
        if let Some(m) = &self.metrics {
            m.threads_reused.add(outcome.threads_reused);
        }
        (results, outcome)
    }

    /// Dispatch `tasks` that produce no value. See
    /// [`run_collect`](WorkerPool::run_collect).
    pub fn run<T, F>(&self, tasks: Vec<T>, f: F) -> WaveOutcome
    where
        T: Send + 'static,
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        let (_, outcome) = self.run_collect(tasks, f);
        outcome
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the task channel lets every worker's `recv` fail once
        // the queue drains; then join them all. Worker bodies never
        // unwind (task panics are caught), so these joins cannot fail.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// How a runtime executes one wave of tasks: per-wave spawned threads or
/// a borrowed persistent pool.
///
/// The `workers` argument of [`Executor::run`] caps concurrency in both
/// modes: a wave spawns that many threads; a pool (provisioned once per
/// job, sized for the larger of map/reduce workers) gates each dispatch
/// at that width via [`WorkerPool::run_collect_capped`] — which is how
/// the governor's wave-width actuation applies to either backend.
#[derive(Clone, Copy)]
pub enum Executor<'p> {
    /// Spawn/join a fresh wave per call ([`PoolMode::WavePerRound`]).
    Wave,
    /// Dispatch to a long-lived pool ([`PoolMode::Persistent`]).
    Pool(&'p WorkerPool),
}

impl Executor<'_> {
    /// Execute `tasks`, blocking until all complete.
    pub fn run<T, F>(&self, workers: usize, tasks: Vec<T>, f: F) -> WaveOutcome
    where
        T: Send + 'static,
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        match self {
            Executor::Wave => run_wave(workers, tasks, f),
            Executor::Pool(pool) => pool.run_collect_capped(workers, tasks, f).1,
        }
    }

    /// Execute `tasks` collecting per-task results in task order.
    pub fn run_collect<T, R, F>(&self, workers: usize, tasks: Vec<T>, f: F) -> (Vec<R>, WaveOutcome)
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        match self {
            Executor::Wave => run_wave_collect(workers, tasks, f),
            Executor::Pool(pool) => pool.run_collect_capped(workers, tasks, f),
        }
    }
}

/// Weighted fair-share division of a fixed slot count across live
/// tenants — the serve daemon's per-job wave tickets over one shared
/// [`WorkerPool`].
///
/// Each running job registers a [`ShareTicket`] carrying its priority
/// weight and an *apply* callback; whenever membership changes (a job
/// registers or its ticket drops) every live tenant's callback is
/// invoked with its recomputed cap `max(1, slots·weight/Σweights)`.
/// Jobs route the callback into their `ActiveConfig` share cap, so
/// wave widths (static or governor-raised) actuate within the share.
pub struct FairShare {
    slots: usize,
    tenants: parking_lot::Mutex<Vec<Tenant>>,
    next_id: std::sync::atomic::AtomicU64,
}

struct Tenant {
    id: u64,
    weight: usize,
    apply: Box<dyn Fn(usize) + Send>,
}

impl FairShare {
    /// A ledger dividing `slots` worker slots (at least 1).
    pub fn new(slots: usize) -> Arc<FairShare> {
        Arc::new(FairShare {
            slots: slots.max(1),
            tenants: parking_lot::Mutex::new(Vec::new()),
            next_id: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The slot count being divided.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Live tenants.
    pub fn tenants(&self) -> usize {
        self.tenants.lock().len()
    }

    /// Register a tenant with `weight` (clamped to ≥ 1). `apply` is
    /// called with the tenant's cap on every rebalance — including
    /// immediately, before this returns — from whichever thread
    /// triggered the membership change.
    pub fn register(
        self: &Arc<Self>,
        weight: usize,
        apply: impl Fn(usize) + Send + 'static,
    ) -> ShareTicket {
        let id = self.next_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut tenants = self.tenants.lock();
        tenants.push(Tenant { id, weight: weight.max(1), apply: Box::new(apply) });
        Self::rebalance(self.slots, &tenants);
        ShareTicket { id, share: Arc::clone(self) }
    }

    fn rebalance(slots: usize, tenants: &[Tenant]) {
        let total: usize = tenants.iter().map(|t| t.weight).sum();
        for t in tenants {
            let cap = (slots * t.weight / total.max(1)).max(1);
            (t.apply)(cap);
        }
    }

    fn deregister(&self, id: u64) {
        let mut tenants = self.tenants.lock();
        tenants.retain(|t| t.id != id);
        Self::rebalance(self.slots, &tenants);
    }
}

impl std::fmt::Debug for FairShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairShare")
            .field("slots", &self.slots)
            .field("tenants", &self.tenants())
            .finish()
    }
}

/// A tenant's registration in a [`FairShare`]; dropping it releases the
/// share back to the remaining tenants (their callbacks fire with the
/// enlarged caps).
pub struct ShareTicket {
    id: u64,
    share: Arc<FairShare>,
}

impl Drop for ShareTicket {
    fn drop(&mut self) {
        self.share.deregister(self.id);
    }
}

impl std::fmt::Debug for ShareTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShareTicket").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn wave_runs_every_task_exactly_once() {
        let hits = AtomicU64::new(0);
        let outcome = run_wave(4, (0..100).collect(), |_, _x: i32| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(outcome.tasks, 100);
        assert_eq!(outcome.threads_spawned, 4);
        assert_eq!(outcome.threads_reused, 0);
    }

    #[test]
    fn empty_wave_spawns_nothing() {
        let outcome = run_wave(8, Vec::<u8>::new(), |_, _| panic!("no tasks"));
        assert_eq!(outcome, WaveOutcome::default());
    }

    #[test]
    fn thread_count_capped_by_task_count() {
        let outcome = run_wave(64, vec![1, 2, 3], |_, _| {});
        assert_eq!(outcome.threads_spawned, 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_with_tasks_panics() {
        run_wave(0, vec![1], |_, _| {});
    }

    #[test]
    fn collect_preserves_task_order() {
        let (results, outcome) =
            run_wave_collect(3, (0u64..50).collect(), |idx, x| (idx as u64) * 1000 + x * 2);
        assert_eq!(outcome.tasks, 50);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, (i as u64) * 1000 + (i as u64) * 2);
        }
    }

    #[test]
    fn tasks_see_their_original_index() {
        let (results, _) = run_wave_collect(4, vec!["a", "b", "c"], |idx, s| format!("{idx}{s}"));
        assert_eq!(results, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn task_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            run_wave(2, vec![1, 2, 3], |_, x: i32| {
                if x == 2 {
                    panic!("task exploded");
                }
            });
        });
        assert!(result.is_err(), "a panicking task must fail the wave");
    }

    #[test]
    fn waves_are_reentrant_from_tasks() {
        // A wave inside a wave (the pipeline nests reduce waves inside
        // scoped ingest threads).
        let total = AtomicU64::new(0);
        run_wave(2, vec![10u64, 20], |_, n| {
            run_wave(2, (0..n).collect(), |_, _| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn pool_runs_every_task_and_reports_reuse() {
        let pool = WorkerPool::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let outcome = pool.run((0..100).collect::<Vec<i32>>(), move |_, _| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(outcome.tasks, 100);
        assert_eq!(outcome.threads_spawned, 0, "pooled waves spawn nothing");
        assert_eq!(outcome.threads_reused, 4);
    }

    #[test]
    fn pool_reuse_capped_by_task_count() {
        let pool = WorkerPool::new(8);
        let outcome = pool.run(vec![1, 2], |_, _| {});
        assert_eq!(outcome.threads_reused, 2);
    }

    #[test]
    fn pool_collect_preserves_task_order() {
        let pool = WorkerPool::new(3);
        let (results, outcome) =
            pool.run_collect((0u64..50).collect(), |idx, x| (idx as u64) * 1000 + x * 2);
        assert_eq!(outcome.tasks, 50);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, (i as u64) * 1000 + (i as u64) * 2);
        }
    }

    #[test]
    fn pool_survives_many_batches() {
        // The whole point: one spawn cost amortized across waves.
        let pool = WorkerPool::new(2);
        let mut total = 0u64;
        for round in 0..20u64 {
            let (results, _) = pool.run_collect((0..10u64).collect(), move |_, x| x + round);
            total += results.iter().sum::<u64>();
        }
        assert_eq!(total, 20 * 45 + 10 * (0..20).sum::<u64>());
    }

    #[test]
    fn pool_task_panics_propagate_and_pool_stays_usable() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![1, 2, 3], |_, x: i32| {
                if x == 2 {
                    panic!("pooled task exploded");
                }
            });
        }));
        assert!(result.is_err(), "a panicking pooled task must fail the batch");
        // The worker that caught the panic is still alive and serving.
        let (results, outcome) = pool.run_collect(vec![10, 20], |_, x| x * 2);
        assert_eq!(results, vec![20, 40]);
        assert_eq!(outcome.threads_reused, 2);
    }

    #[test]
    fn pool_releases_task_captures_before_returning() {
        // The runtime relies on this to reclaim the container with
        // `Arc::into_inner` right after the last wave.
        let pool = WorkerPool::new(3);
        let shared = Arc::new(());
        let captured = Arc::clone(&shared);
        pool.run(vec![(); 16], move |_, ()| {
            let _hold = &captured;
        });
        assert_eq!(Arc::strong_count(&shared), 1, "pool must drop the closure before returning");
    }

    #[test]
    fn pool_drop_joins_cleanly() {
        let pool = WorkerPool::new(4);
        pool.run(vec![1u8; 8], |_, _| {});
        drop(pool); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_sized_pool_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn instrumented_pool_records_metrics() {
        let registry = Registry::new();
        let metrics = PoolMetrics::register(&registry);
        let pool = WorkerPool::new_instrumented(2, Tracer::off(), Some(metrics.clone()));
        pool.run(vec![1, 2, 3, 4], |_, _| {});
        assert_eq!(metrics.queue_depth.value(), 0, "queue drains to zero");
        assert_eq!(metrics.in_flight.value(), 0, "nothing left running");
        assert_eq!(metrics.dispatch_us.count(), 4, "one dispatch sample per task");
        assert_eq!(metrics.threads_reused.value(), 2);
    }

    #[test]
    fn pool_gauges_return_to_zero_after_task_panic() {
        let registry = Registry::new();
        let metrics = PoolMetrics::register(&registry);
        let pool = WorkerPool::new_instrumented(2, Tracer::off(), Some(metrics.clone()));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![1, 2, 3, 4, 5], |_, x: i32| {
                if x % 2 == 0 {
                    panic!("pooled task exploded");
                }
            });
        }));
        assert!(result.is_err(), "the batch must re-raise the panic");
        assert_eq!(metrics.queue_depth.value(), 0, "panic must not skew queue depth");
        assert_eq!(metrics.in_flight.value(), 0, "panic must not skew in-flight");
        // The pool is still usable and keeps metering.
        pool.run(vec![1], |_, _| {});
        assert_eq!(metrics.dispatch_us.count(), 6);
        assert_eq!(metrics.in_flight.value(), 0);
    }

    #[test]
    fn capped_dispatch_limits_concurrency() {
        let pool = WorkerPool::new(4);
        let running = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let (r, p) = (Arc::clone(&running), Arc::clone(&peak));
        let (_, outcome) =
            pool.run_collect_capped(2, (0..32).collect::<Vec<u32>>(), move |_, _| {
                let now = r.fetch_add(1, Ordering::SeqCst) + 1;
                p.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                r.fetch_sub(1, Ordering::SeqCst);
            });
        assert!(peak.load(Ordering::SeqCst) <= 2, "cap 2 must bound concurrency");
        assert_eq!(outcome.tasks, 32);
        assert_eq!(outcome.threads_reused, 2, "reuse reports the effective width");
    }

    #[test]
    fn cap_above_pool_size_is_a_noop() {
        let pool = WorkerPool::new(2);
        let (results, outcome) = pool.run_collect_capped(64, vec![1, 2, 3], |_, x: i32| x + 1);
        assert_eq!(results, vec![2, 3, 4]);
        assert_eq!(outcome.threads_reused, 2);
    }

    #[test]
    fn capped_batch_survives_panics_without_starving_the_gate() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_collect_capped(1, (0..8).collect::<Vec<i32>>(), |_, x| {
                if x == 3 {
                    panic!("capped task exploded");
                }
                x
            });
        }));
        assert!(result.is_err(), "the batch must re-raise the panic");
        // Tokens were returned even by the panicked body: a second
        // capped batch completes instead of deadlocking.
        let (results, _) = pool.run_collect_capped(1, vec![10, 20], |_, x| x * 2);
        assert_eq!(results, vec![20, 40]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_cap_with_tasks_panics() {
        let pool = WorkerPool::new(2);
        let _ = pool.run_collect_capped(0, vec![1], |_, x: i32| x);
    }

    #[test]
    fn executor_dispatches_to_either_backend() {
        let wave = Executor::Wave.run_collect(2, vec![1, 2, 3], |_, x: i32| x * 10).0;
        let pool = WorkerPool::new(2);
        let pooled = Executor::Pool(&pool).run_collect(2, vec![1, 2, 3], |_, x: i32| x * 10).0;
        assert_eq!(wave, pooled);
        assert_eq!(wave, vec![10, 20, 30]);
    }

    #[test]
    fn fair_share_divides_slots_by_weight() {
        let share = FairShare::new(12);
        let a_cap = Arc::new(AtomicU64::new(0));
        let b_cap = Arc::new(AtomicU64::new(0));
        let _a = share.register(2, {
            let cap = Arc::clone(&a_cap);
            move |c| cap.store(c as u64, Ordering::Relaxed)
        });
        assert_eq!(a_cap.load(Ordering::Relaxed), 12, "sole tenant owns every slot");
        let b = share.register(4, {
            let cap = Arc::clone(&b_cap);
            move |c| cap.store(c as u64, Ordering::Relaxed)
        });
        assert_eq!(share.tenants(), 2);
        assert_eq!(a_cap.load(Ordering::Relaxed), 4, "weight 2 of 6 → a third");
        assert_eq!(b_cap.load(Ordering::Relaxed), 8, "weight 4 of 6 → two thirds");
        drop(b);
        assert_eq!(share.tenants(), 1);
        assert_eq!(a_cap.load(Ordering::Relaxed), 12, "departed share is returned");
    }

    #[test]
    fn fair_share_never_starves_a_tenant() {
        // More tenants than slots: everyone still gets at least 1.
        let share = FairShare::new(2);
        let caps: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let _tickets: Vec<ShareTicket> = caps
            .iter()
            .map(|cap| {
                let cap = Arc::clone(cap);
                share.register(1, move |c| cap.store(c as u64, Ordering::Relaxed))
            })
            .collect();
        for cap in &caps {
            assert_eq!(cap.load(Ordering::Relaxed), 1, "floor of one slot each");
        }
    }

    #[test]
    fn fair_share_zero_weight_is_clamped() {
        let share = FairShare::new(8);
        let cap = Arc::new(AtomicU64::new(0));
        let _t = share.register(0, {
            let cap = Arc::clone(&cap);
            move |c| cap.store(c as u64, Ordering::Relaxed)
        });
        assert_eq!(cap.load(Ordering::Relaxed), 8, "weight clamps to 1, not 0");
    }
}
