//! **SupMR** — a scale-up (single-node, shared-memory) MapReduce runtime
//! with an ingest chunk pipeline and a p-way merge phase.
//!
//! This crate reproduces the system of *"SupMR: Circumventing Disk and
//! Memory Bandwidth Bottlenecks for Scale-up MapReduce"* (Sevilla et al.,
//! 2014). It contains both the **baseline** Phoenix++-style runtime the
//! paper modifies and the **SupMR** modifications themselves:
//!
//! 1. **Ingest chunk pipeline** ([`runtime::pipeline`]) — the input is
//!    partitioned into ingest chunks ([`chunk`]); while mapper threads
//!    operate on chunk *i*, an ingest thread reads chunk *i+1* from
//!    primary storage (double-buffering). The intermediate key/value
//!    container persists across the resulting map rounds.
//! 2. **Merge optimization** — the final merge uses a single-round
//!    parallel p-way merge (`supmr-merge`) instead of the baseline's
//!    iterative 2-way rounds.
//!
//! # Architecture
//!
//! * [`api`] — the user-facing [`api::MapReduce`] trait (map/reduce
//!   callbacks, key/value/combiner/container choices) and [`api::Emit`].
//! * [`combiner`] — insert-time value folding (Phoenix++ "combiners").
//! * [`container`] — intermediate pair storage: hash (word count),
//!   dense array (histogram), and unlocked run storage (sort).
//! * [`chunk`] — ingest chunks: inter-file (byte ranges with record
//!   boundary adjustment) and intra-file (groups of small files).
//! * [`split`] — record-aligned input splits inside a chunk.
//! * [`pool`] — map/reduce task execution: Phoenix-style per-wave
//!   spawn/join plus a persistent worker pool
//!   ([`pool::PoolMode`] chooses per job).
//! * [`runtime`] — job configuration and the two runtimes behind one
//!   entry surface: [`runtime::Job`] for a single job (dispatching on
//!   the chunking strategy) and [`runtime::Pipeline`] for multi-stage
//!   DAGs whose intermediate results stream between stages in memory.
//!
//! # Quick example
//!
//! ```
//! use supmr::api::{Emit, MapReduce};
//! use supmr::combiner::Sum;
//! use supmr::container::HashContainer;
//! use supmr::runtime::{Input, Job};
//! use supmr_storage::MemSource;
//!
//! struct WordCount;
//!
//! impl MapReduce for WordCount {
//!     type Key = String;
//!     type Value = u64;
//!     type Combiner = Sum;
//!     type Output = u64;
//!     type Container = HashContainer<String, u64, Sum>;
//!
//!     fn make_container(&self) -> Self::Container {
//!         HashContainer::default()
//!     }
//!
//!     fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
//!         for word in split.split(|b| !b.is_ascii_alphanumeric()) {
//!             if !word.is_empty() {
//!                 emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
//!             }
//!         }
//!     }
//!
//!     fn reduce(&self, _key: &String, count: u64) -> u64 {
//!         count
//!     }
//! }
//!
//! let input = Input::stream(MemSource::from(b"a b a\n".to_vec()));
//! let result = Job::new(WordCount).run(input).unwrap();
//! let pairs = result.sorted_pairs();
//! assert_eq!(pairs, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
//! ```

//! # Observability
//!
//! Every run produces a [`runtime::JobReport`] (phase timings, counters
//! with pipeline **stall accounting**, optional CPU-utilization and
//! typed event traces) with a stable JSON rendering. Tracing is enabled
//! per job ([`Job::trace`](runtime::Job::trace)) and exported through
//! `supmr-metrics` (Chrome `trace_event` JSON, JSONL, ASCII timeline).
//! Fallible entry points return the typed [`SupmrError`] ([`error`]).
//!
//! For *live* visibility, attach a metrics [`Registry`]
//! ([`Job::metrics`](runtime::Job::metrics)) or serve an OpenMetrics
//! scrape endpoint for the duration of a run
//! ([`Job::metrics_addr`](runtime::Job::metrics_addr)): the runtimes,
//! worker pool, and merge backends then maintain `supmr.*` counter,
//! gauge, and HDR-histogram families ([`runtime::JobMetrics`],
//! [`pool::PoolMetrics`]) cheap enough to leave on under load, and the
//! job report folds the final percentile snapshot into its JSON.

pub mod api;
pub mod chunk;
pub mod combiner;
pub mod container;
pub mod error;
pub mod key;
pub mod parse;
pub mod pool;
pub mod runtime;
pub mod spill;
pub mod split;

pub use api::{Emit, MapReduce};
pub use chunk::{Chunking, IngestChunk};
pub use error::{Result, SupmrError};
pub use key::{ByteKey, CompactKey};
pub use parse::{parse_duration, parse_size, ParseError};
pub use pool::{FairShare, PoolMetrics, PoolMode, ShareTicket};
pub use runtime::{
    run_with, ActionRecord, ActiveConfig, FrameIter, GovernorConfig, GovernorReport, HandoffStats,
    Input, IterationReport, Job, JobConfig, JobMetrics, JobReport, JobResult, JobStats, MergeMode,
    Pipeline, PipelineResult, SharedRun, Stage, StageData, StageId, StageMetrics, StageReport,
};
pub use spill::{MemoryAccountant, PairCodec, SpillMetrics};
pub use supmr_metrics::{
    EventKind, JobTrace, MetricsServer, MetricsSnapshot, Registry, StallStats, TraceEvent,
    TraceLevel,
};
