//! Insert-time value folding — Phoenix++'s "combiners".
//!
//! A combiner collapses the values emitted for one key into an
//! accumulator *as they are inserted*, instead of buffering them all for
//! the reduce phase. For skewed workloads like word count this shrinks
//! the intermediate set by orders of magnitude, which is exactly why the
//! paper's word count has a near-zero reduce phase (Table II: 0.03s on
//! 155GB of input).

/// Folds the stream of values emitted for a single key into an
/// accumulator.
///
/// ```
/// use supmr::combiner::{Combiner, Sum};
///
/// let mut acc = <Sum as Combiner<u64>>::unit(3);
/// <Sum as Combiner<u64>>::fold(&mut acc, 4);
/// <Sum as Combiner<u64>>::merge(&mut acc, 10); // another worker's acc
/// assert_eq!(acc, 17);
/// ```
///
/// `unit` lifts the first value, `fold` absorbs subsequent values on the
/// same worker, and `merge` combines accumulators built by different
/// workers. For every combiner, any fold/merge tree over the same
/// multiset of values must produce the same accumulator.
pub trait Combiner<V>: Send + Sync + 'static {
    /// The accumulator type handed to `reduce`.
    type Acc: Clone + Send + Sync + 'static;

    /// Lift the first value for a key.
    fn unit(v: V) -> Self::Acc;

    /// Absorb another value.
    fn fold(acc: &mut Self::Acc, v: V);

    /// Combine two accumulators (cross-worker merge).
    fn merge(acc: &mut Self::Acc, other: Self::Acc);
}

/// Sums values (`word count` uses this with `V = u64`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

impl<V> Combiner<V> for Sum
where
    V: std::ops::AddAssign + Clone + Send + Sync + 'static,
{
    type Acc = V;

    fn unit(v: V) -> V {
        v
    }

    fn fold(acc: &mut V, v: V) {
        *acc += v;
    }

    fn merge(acc: &mut V, other: V) {
        *acc += other;
    }
}

/// Counts occurrences, ignoring the value payload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Count;

impl<V: Send + Sync + 'static> Combiner<V> for Count {
    type Acc = u64;

    fn unit(_: V) -> u64 {
        1
    }

    fn fold(acc: &mut u64, _: V) {
        *acc += 1;
    }

    fn merge(acc: &mut u64, other: u64) {
        *acc += other;
    }
}

/// Keeps the maximum value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Max;

impl<V> Combiner<V> for Max
where
    V: Ord + Clone + Send + Sync + 'static,
{
    type Acc = V;

    fn unit(v: V) -> V {
        v
    }

    fn fold(acc: &mut V, v: V) {
        if v > *acc {
            *acc = v;
        }
    }

    fn merge(acc: &mut V, other: V) {
        Self::fold(acc, other);
    }
}

/// Keeps the minimum value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Min;

impl<V> Combiner<V> for Min
where
    V: Ord + Clone + Send + Sync + 'static,
{
    type Acc = V;

    fn unit(v: V) -> V {
        v
    }

    fn fold(acc: &mut V, v: V) {
        if v < *acc {
            *acc = v;
        }
    }

    fn merge(acc: &mut V, other: V) {
        Self::fold(acc, other);
    }
}

/// Buffers every value (no combining) — for reduces that need the whole
/// value list, at the memory cost the other combiners avoid.
#[derive(Debug, Clone, Copy, Default)]
pub struct Buffer;

impl<V: Clone + Send + Sync + 'static> Combiner<V> for Buffer {
    type Acc = Vec<V>;

    fn unit(v: V) -> Vec<V> {
        vec![v]
    }

    fn fold(acc: &mut Vec<V>, v: V) {
        acc.push(v);
    }

    fn merge(acc: &mut Vec<V>, mut other: Vec<V>) {
        acc.append(&mut other);
    }
}

/// Passes the single value through unchanged. For jobs whose keys are
/// unique (sort/Terasort): `fold`/`merge` should never fire, and keep the
/// first value if they do.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl<V: Clone + Send + Sync + 'static> Combiner<V> for Identity {
    type Acc = V;

    fn unit(v: V) -> V {
        v
    }

    fn fold(_acc: &mut V, _v: V) {}

    fn merge(_acc: &mut V, _other: V) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<C: Combiner<V>, V>(values: Vec<V>) -> Option<C::Acc> {
        let mut it = values.into_iter();
        let mut acc = C::unit(it.next()?);
        for v in it {
            C::fold(&mut acc, v);
        }
        Some(acc)
    }

    #[test]
    fn sum_folds_and_merges() {
        let acc = run::<Sum, u64>(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(acc, 10);
        let mut a = 10u64;
        <Sum as Combiner<u64>>::merge(&mut a, 5);
        assert_eq!(a, 15);
    }

    #[test]
    fn count_ignores_payload() {
        let acc = run::<Count, &str>(vec!["x", "y", "z"]).unwrap();
        assert_eq!(acc, 3);
        let mut a = 3u64;
        <Count as Combiner<&str>>::merge(&mut a, 7);
        assert_eq!(a, 10);
    }

    #[test]
    fn max_and_min() {
        assert_eq!(run::<Max, i32>(vec![3, -1, 7, 2]).unwrap(), 7);
        assert_eq!(run::<Min, i32>(vec![3, -1, 7, 2]).unwrap(), -1);
    }

    #[test]
    fn buffer_keeps_everything_in_order() {
        let acc = run::<Buffer, u8>(vec![5, 1, 5]).unwrap();
        assert_eq!(acc, vec![5, 1, 5]);
        let mut a = vec![1u8];
        <Buffer as Combiner<u8>>::merge(&mut a, vec![2, 3]);
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn identity_keeps_first() {
        let acc = run::<Identity, &str>(vec!["first", "second"]).unwrap();
        assert_eq!(acc, "first");
        let mut a = "first";
        <Identity as Combiner<&str>>::merge(&mut a, "other");
        assert_eq!(a, "first");
    }

    #[test]
    fn fold_merge_associativity_for_sum() {
        // fold-all vs split-merge must agree.
        let all = run::<Sum, u64>((1..=100).collect()).unwrap();
        let mut left = run::<Sum, u64>((1..=50).collect()).unwrap();
        let right = run::<Sum, u64>((51..=100).collect()).unwrap();
        <Sum as Combiner<u64>>::merge(&mut left, right);
        assert_eq!(all, left);
    }

    #[test]
    fn empty_stream_has_no_accumulator() {
        assert!(run::<Sum, u64>(vec![]).is_none());
    }
}
