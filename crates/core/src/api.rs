//! The user-facing MapReduce API.
//!
//! Mirrors the Phoenix++ application contract as modified by SupMR
//! (Table I of the paper): the application supplies `map` and `reduce`
//! callbacks plus its choice of intermediate container and combiner; the
//! runtime owns memory management, chunking, splitting, scheduling, and
//! merging. The paper's `set_data()` callback — "pass the chunk length
//! and ingest chunk pointer back to the application" — is subsumed by
//! `map` receiving a borrowed byte slice of the current ingest chunk:
//! the runtime dictates which memory the callbacks operate on, the
//! application never re-implements ingest.

use crate::combiner::Combiner;
use crate::container::Container;
use crate::key::ByteKey;
use crate::spill::PairCodec;
use std::hash::Hash;

/// Sink for intermediate key/value pairs emitted by `map`.
///
/// The concrete emitter is the container's thread-local insert handle,
/// so combining happens at emit time with no synchronization.
pub trait Emit<K, V> {
    /// Emit one intermediate pair.
    fn emit(&mut self, key: K, value: V);

    /// Emit one pair whose key is a *borrowed* byte slice — typically a
    /// token pointing straight into the ingest chunk.
    ///
    /// The default materializes an owned key and forwards to
    /// [`Emit::emit`]; containers override it to probe with the
    /// borrowed bytes and only call [`ByteKey::from_bytes`] on the
    /// first insert of each distinct key, so a repeat of a hot word
    /// costs zero allocations.
    fn emit_bytes(&mut self, key: &[u8], value: V)
    where
        K: ByteKey,
    {
        self.emit(K::from_bytes(key), value);
    }
}

/// Convenience accumulator type alias: the accumulator a job's combiner
/// produces for its values.
pub type AccOf<J> = <<J as MapReduce>::Combiner as Combiner<<J as MapReduce>::Value>>::Acc;

/// A MapReduce application.
///
/// Implementations choose their intermediate representation the way
/// Phoenix++ applications do — by container and combiner type — because
/// that choice is workload-dependent (§V-B: hash for word count's skewed
/// keys, unlocked array storage for sort's unique keys).
pub trait MapReduce: Send + Sync + 'static {
    /// Intermediate key.
    type Key: Ord + Hash + Clone + Send + Sync + 'static;
    /// Intermediate value.
    type Value: Clone + Send + Sync + 'static;
    /// Insert-time folding of values per key.
    type Combiner: Combiner<Self::Value>;
    /// Per-key result of `reduce`.
    type Output: Clone + Send + Sync + 'static;
    /// Intermediate pair storage.
    type Container: Container<Self::Key, Self::Value, Self::Combiner>;

    /// Build the job's container. Called exactly once per job — in the
    /// pipeline runtime the container *persists across all map rounds*
    /// (§III-C), which is why the runtime rather than the map phase owns
    /// its construction.
    fn make_container(&self) -> Self::Container;

    /// Transform one input split into intermediate pairs. The split is a
    /// record-aligned byte range of the current ingest chunk.
    fn map(&self, split: &[u8], emit: &mut dyn Emit<Self::Key, Self::Value>);

    /// Coalesce the accumulated values of one key into an output.
    fn reduce(&self, key: &Self::Key, acc: AccOf<Self>) -> Self::Output;

    /// How this application's intermediate pairs cross the byte
    /// boundary into spill run files, enabling out-of-core execution
    /// under [`JobConfig::memory_budget`]. The default — `None` — keeps
    /// the job fully in-memory; setting a budget without a codec is an
    /// [`InvalidConfig`](crate::error::SupmrError::InvalidConfig) error.
    ///
    /// [`JobConfig::memory_budget`]: crate::runtime::JobConfig::memory_budget
    fn spill_codec(&self) -> Option<PairCodec<Self::Key, AccOf<Self>>> {
        None
    }

    /// How this application's *reduced output* pairs cross a pipeline
    /// stage boundary: a non-terminal [`Pipeline`] stage encodes each
    /// `(key, output)` straight out of its reduce workers into the
    /// framed hand-off buffer the next stage maps over. The default —
    /// `None` — limits the application to terminal (or single-stage)
    /// use; wiring it into a stage that feeds another is an
    /// [`InvalidConfig`](crate::error::SupmrError::InvalidConfig) error.
    ///
    /// [`Pipeline`]: crate::runtime::Pipeline
    fn handoff_codec(&self) -> Option<PairCodec<Self::Key, Self::Output>> {
        None
    }
}

/// An [`Emit`] adapter that counts pairs as they pass through, used by
/// the runtime to report intermediate-pair statistics.
pub struct CountingEmit<'e, K, V> {
    inner: &'e mut dyn Emit<K, V>,
    emitted: u64,
}

impl<'e, K, V> CountingEmit<'e, K, V> {
    /// Wrap an emitter.
    pub fn new(inner: &'e mut dyn Emit<K, V>) -> Self {
        CountingEmit { inner, emitted: 0 }
    }

    /// Pairs emitted through this adapter.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl<K, V> Emit<K, V> for CountingEmit<'_, K, V> {
    fn emit(&mut self, key: K, value: V) {
        self.emitted += 1;
        self.inner.emit(key, value);
    }

    fn emit_bytes(&mut self, key: &[u8], value: V)
    where
        K: ByteKey,
    {
        self.emitted += 1;
        self.inner.emit_bytes(key, value);
    }
}

/// A trivial vector-backed emitter for tests and small tools.
#[derive(Debug, Default)]
pub struct VecEmit<K, V> {
    /// The collected pairs, in emission order.
    pub pairs: Vec<(K, V)>,
}

impl<K, V> Emit<K, V> for VecEmit<K, V> {
    fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_emit_collects_in_order() {
        let mut e = VecEmit::default();
        e.emit("b", 1);
        e.emit("a", 2);
        assert_eq!(e.pairs, vec![("b", 1), ("a", 2)]);
    }

    #[test]
    fn counting_emit_counts_and_forwards() {
        let mut sink = VecEmit::default();
        let mut counter = CountingEmit::new(&mut sink);
        for i in 0..5 {
            counter.emit(i, i * 10);
        }
        assert_eq!(counter.emitted(), 5);
        assert_eq!(sink.pairs.len(), 5);
        assert_eq!(sink.pairs[3], (3, 30));
    }
}
