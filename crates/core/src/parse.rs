//! Shared human-facing value parsing: sizes ("64M") and durations
//! ("500ms"). The CLI and the serve API's JSON job specs both accept
//! these spellings, so the hardened parsers (exact whole-number path,
//! T suffix, overflow errors) live here rather than being duplicated
//! per front end.

use std::time::Duration;

/// A value-parse error carrying the user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parse a size with optional K/M/G/T suffix ("64M" → 67108864).
/// Fractional magnitudes are allowed ("1.5M"); whole numbers parse
/// exactly (no float rounding), and anything that does not fit in `u64`
/// is an overflow error rather than a silent wrap or saturation.
pub fn parse_size(s: &str) -> Result<u64, ParseError> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1024u64),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1024 * 1024),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        Some('T') | Some('t') => (&s[..s.len() - 1], 1024 * 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    let digits = digits.trim();
    if digits.is_empty() {
        return Err(ParseError(format!("invalid size '{s}'")));
    }
    // Whole numbers take the exact integer path: `u64::MAX` must round-
    // trip, and overflow must be detected, neither of which f64 can do.
    if let Ok(whole) = digits.parse::<u64>() {
        return whole.checked_mul(mult).ok_or_else(|| ParseError(format!("size '{s}' overflows")));
    }
    let n: f64 = digits.parse().map_err(|_| ParseError(format!("invalid size '{s}'")))?;
    if !n.is_finite() || n < 0.0 {
        return Err(ParseError(format!("invalid size '{s}'")));
    }
    let scaled = n * mult as f64;
    if scaled >= u64::MAX as f64 {
        return Err(ParseError(format!("size '{s}' overflows")));
    }
    Ok(scaled as u64)
}

/// Parse a duration: bare numbers are seconds, `ms`/`s` suffixes are
/// explicit ("500ms", "2s", "1.5").
pub fn parse_duration(s: &str) -> Result<Duration, ParseError> {
    let s = s.trim();
    let (digits, ms_per_unit) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1.0)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1000.0)
    } else {
        (s, 1000.0)
    };
    let n: f64 = digits.parse().map_err(|_| ParseError(format!("invalid duration '{s}'")))?;
    if !n.is_finite() || n < 0.0 {
        return Err(ParseError(format!("invalid duration '{s}'")));
    }
    Ok(Duration::from_millis((n * ms_per_unit) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("512").unwrap(), 512);
        assert_eq!(parse_size("4K").unwrap(), 4096);
        assert_eq!(parse_size("64m").unwrap(), 64 * 1024 * 1024);
        assert_eq!(parse_size("2G").unwrap(), 2 * 1024 * 1024 * 1024);
        assert_eq!(parse_size("1T").unwrap(), 1024u64.pow(4));
        assert_eq!(parse_size("1.5K").unwrap(), 1536);
    }

    #[test]
    fn size_whole_numbers_parse_exactly() {
        assert_eq!(parse_size(&u64::MAX.to_string()).unwrap(), u64::MAX);
        // 2^53 + 1: representable in u64, not in f64.
        assert_eq!(parse_size("9007199254740993").unwrap(), 9007199254740993);
    }

    #[test]
    fn size_overflow_is_an_error_not_a_wrap() {
        assert!(parse_size("20000000000000000000").is_err());
        assert!(parse_size("18446744073709551615K").is_err());
        assert!(parse_size("17T").unwrap() > 0);
    }

    #[test]
    fn size_rejects_degenerate_inputs() {
        for bad in ["", "K", " M ", "nan", "inf", "infG", "-1", "-2K"] {
            assert!(parse_size(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn duration_suffixes() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("1.5").unwrap(), Duration::from_millis(1500));
        assert!(parse_duration("soon").is_err());
        assert!(parse_duration("-1s").is_err());
    }
}
