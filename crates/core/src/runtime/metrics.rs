//! Live metric families the runtimes maintain while a job executes.
//!
//! [`JobMetrics`] bundles every `supmr.*` handle the hot path touches:
//! map task latency and wave occupancy, chunk ingest bytes/latency,
//! reduce partition latency, merge round/key accounting, and the
//! pipeline stall totals. Handles are registered once per job against
//! the [`Registry`] in [`JobConfig::metrics`](super::JobConfig::metrics)
//! and then only touch their own sharded atomics, so recording from a
//! map task costs a few relaxed atomic adds — cheap enough to leave on
//! under load, unlike the post-hoc `collectl` numbers the paper reads
//! after a 155GB run finishes.
//!
//! Families that differ between the two runtimes carry a
//! `runtime="original"|"pipeline"` label, mirroring how the paper's
//! Table II compares the same workload across runtimes.

use std::sync::Arc;
use std::time::Duration;
use supmr_metrics::{Counter, Gauge, Histogram, Registry};

/// Per-job handles into the `supmr.*` metric families.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// `supmr.map.task_us{runtime}` — per-map-task latency.
    pub map_task_us: Histogram,
    /// `supmr.map.in_flight` — map tasks currently executing (wave
    /// occupancy as a live level; RAII-guarded, see
    /// [`supmr_metrics::Gauge::track`]).
    pub map_in_flight: Gauge,
    /// `supmr.map.wave_tasks{runtime}` — tasks per map wave.
    pub wave_tasks: Histogram,
    /// `supmr.map.scan_bytes{runtime}` — split bytes handed to map
    /// tasks (the volume the SWAR scanners tokenized).
    pub scan_bytes: Counter,
    /// `supmr.ingest.bytes{runtime}` — bytes read from primary storage.
    pub ingest_bytes: Counter,
    /// `supmr.ingest.chunk_us{runtime}` — per-chunk ingest latency.
    pub ingest_chunk_us: Histogram,
    /// `supmr.container.drain_us` — per-partition container drain
    /// latency (shard payload → reduce input, on a reduce worker).
    pub drain_us: Histogram,
    /// `supmr.reduce.partition_us` — per-reduce-partition latency.
    pub reduce_partition_us: Histogram,
    /// `supmr.merge.rounds` — merge rounds executed.
    pub merge_rounds: Counter,
    /// `supmr.merge.keys_merged` — elements moved while merging.
    pub merge_keys: Counter,
    /// `supmr.merge.round_us` — per-merge-round latency.
    pub merge_round_us: Histogram,
    /// `supmr.stall.map_us` — time the map side waited on ingest.
    pub stall_map_us: Counter,
    /// `supmr.stall.ingest_us` — time the ingest side waited on maps.
    pub stall_ingest_us: Counter,
    /// `supmr.jobs_completed` — jobs finished successfully.
    pub jobs_completed: Counter,
}

impl JobMetrics {
    /// Register (or re-attach to) every family under `registry`, with
    /// `runtime` as the label value for runtime-specific families.
    pub fn register(registry: &Registry, runtime: &str) -> Arc<JobMetrics> {
        let rt = &[("runtime", runtime)][..];
        Arc::new(JobMetrics {
            map_task_us: registry.histogram(
                "supmr.map.task_us",
                "Map task latency, microseconds.",
                rt,
            ),
            map_in_flight: registry.gauge(
                "supmr.map.in_flight",
                "Map tasks currently executing (wave occupancy).",
                &[],
            ),
            wave_tasks: registry.histogram(
                "supmr.map.wave_tasks",
                "Tasks dispatched per map wave.",
                rt,
            ),
            scan_bytes: registry.counter(
                "supmr.map.scan_bytes",
                "Split bytes handed to map tasks (SWAR-scanned volume).",
                rt,
            ),
            ingest_bytes: registry.counter(
                "supmr.ingest.bytes",
                "Bytes read from primary storage into ingest chunks.",
                rt,
            ),
            ingest_chunk_us: registry.histogram(
                "supmr.ingest.chunk_us",
                "Per-chunk ingest latency, microseconds.",
                rt,
            ),
            drain_us: registry.histogram(
                "supmr.container.drain_us",
                "Per-partition container drain latency, microseconds.",
                &[],
            ),
            reduce_partition_us: registry.histogram(
                "supmr.reduce.partition_us",
                "Reduce partition latency, microseconds.",
                &[],
            ),
            merge_rounds: registry.counter(
                "supmr.merge.rounds",
                "Merge rounds executed across all jobs.",
                &[],
            ),
            merge_keys: registry.counter(
                "supmr.merge.keys_merged",
                "Elements moved while merging (the re-scanning cost).",
                &[],
            ),
            merge_round_us: registry.histogram(
                "supmr.merge.round_us",
                "Per-merge-round latency, microseconds.",
                &[],
            ),
            stall_map_us: registry.counter(
                "supmr.stall.map_us",
                "Time the map side sat idle waiting for chunk ingest, microseconds.",
                &[],
            ),
            stall_ingest_us: registry.counter(
                "supmr.stall.ingest_us",
                "Time the ingest side sat idle waiting for the mappers, microseconds.",
                &[],
            ),
            jobs_completed: registry.counter(
                "supmr.jobs_completed",
                "Jobs that ran to completion.",
                &[],
            ),
        })
    }

    /// Record one chunk's ingest (size and read latency).
    pub fn record_ingest(&self, bytes: u64, took: Duration) {
        self.ingest_bytes.add(bytes);
        self.ingest_chunk_us.record_duration_us(took);
    }

    /// Record a pipeline round's stall split (at most one side is
    /// non-zero per round).
    pub fn record_stalls(&self, map_wait: Duration, ingest_wait: Duration) {
        if !map_wait.is_zero() {
            self.stall_map_us.add(map_wait.as_micros() as u64);
        }
        if !ingest_wait.is_zero() {
            self.stall_ingest_us.add(ingest_wait.as_micros() as u64);
        }
    }
}

/// Per-stage handles into the `supmr.stage.*` families, labelled with
/// the stage's name — how a scrape tells a pipeline's stages apart.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    /// `supmr.stage.total_us{stage}` — stage wall-clock per execution.
    pub total_us: Histogram,
    /// `supmr.stage.pairs_out{stage}` — pairs the stage produced
    /// (terminal output or hand-off frames).
    pub pairs_out: Counter,
    /// `supmr.stage.handoff_bytes{stage}` — framed bytes handed to the
    /// downstream stage.
    pub handoff_bytes: Counter,
    /// `supmr.stage.runs{stage}` — executions (iterations × 1).
    pub runs: Counter,
}

impl StageMetrics {
    /// Register (or re-attach to) the stage families under `registry`,
    /// with `stage` as the label value.
    pub fn register(registry: &Registry, stage: &str) -> Arc<StageMetrics> {
        let st = &[("stage", stage)][..];
        Arc::new(StageMetrics {
            total_us: registry.histogram(
                "supmr.stage.total_us",
                "Pipeline stage wall-clock per execution, microseconds.",
                st,
            ),
            pairs_out: registry.counter(
                "supmr.stage.pairs_out",
                "Pairs a pipeline stage produced (terminal or hand-off).",
                st,
            ),
            handoff_bytes: registry.counter(
                "supmr.stage.handoff_bytes",
                "Framed bytes a pipeline stage handed to its successor.",
                st,
            ),
            runs: registry.counter(
                "supmr.stage.runs",
                "Pipeline stage executions (one per iteration).",
                st,
            ),
        })
    }
}
