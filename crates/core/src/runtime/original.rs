//! The original (baseline) runtime: whole-input ingest, one map wave.
//!
//! This is the Phoenix++-style execution the paper measures as "none" in
//! Table II: the job reads *all* input from primary storage into memory
//! (a long, serial, IO-bound phase — the ingest bottleneck of Fig. 1),
//! then launches one wave of mapper threads over the input splits, then
//! reduces and merges.

use super::{
    finish_job, ingest_entire, map_wave, Input, JobConfig, JobMetrics, JobStats, StageResult,
    StageWiring,
};
use crate::api::MapReduce;
use crate::container::Container;
use crate::error::{Result, SupmrError};
use crate::pool::Executor;
use std::sync::Arc;
use std::time::Instant;
use supmr_metrics::{EventKind, FlowPhase, Phase, PhaseTimer, Tracer};

/// Execute `job` on the original runtime.
pub(crate) fn run<J: MapReduce>(
    job: &Arc<J>,
    input: Input,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    wiring: StageWiring<J>,
) -> Result<StageResult<J::Key, J::Output>> {
    let mut timer = PhaseTimer::start_job();
    let mut stats = JobStats::default();
    let metrics = config.metrics.as_ref().map(|r| JobMetrics::register(r, "original"));
    let container = Arc::new(job.make_container());
    container.configure(&super::container_hooks(config));
    let spill = super::setup_spill(job, &container, config, tracer, &wiring)?;

    timer.begin(Phase::Ingest);
    tracer.emit(EventKind::ChunkIngestStart { chunk: 0 });
    let ingest0 = Instant::now();
    let chunk = ingest_entire(input).map_err(|source| SupmrError::ingest(0, source))?;
    tracer.emit(EventKind::ChunkIngestEnd { chunk: 0, bytes: chunk.len() as u64 });
    if let Some(m) = &metrics {
        m.record_ingest(chunk.len() as u64, ingest0.elapsed());
    }
    if let Some(f) = &config.flow {
        f.record_owned(FlowPhase::Ingest, chunk.len() as u64, ingest0.elapsed());
    }
    timer.end(Phase::Ingest);
    stats.bytes_ingested = chunk.len() as u64;
    stats.ingest_chunks = 1;

    config.check_cancelled()?;
    timer.begin(Phase::Map);
    let outcome = map_wave(job, &container, &chunk, config, exec, tracer, metrics.as_ref(), 0);
    timer.end(Phase::Map);
    stats.map_rounds = 1;
    stats.map_tasks = outcome.tasks;
    stats.add_wave(outcome);
    drop(chunk); // input buffer freed before reduce, as in Phoenix++

    finish_job(job, container, config, exec, tracer, metrics.as_ref(), spill, timer, stats, wiring)
}
