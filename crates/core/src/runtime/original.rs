//! The original (baseline) runtime: whole-input ingest, one map wave.
//!
//! This is the Phoenix++-style execution the paper measures as "none" in
//! Table II: the job reads *all* input from primary storage into memory
//! (a long, serial, IO-bound phase — the ingest bottleneck of Fig. 1),
//! then launches one wave of mapper threads over the input splits, then
//! reduces and merges.

use super::{finish_job, ingest_entire, map_wave, Input, JobConfig, JobResult, JobStats};
use crate::api::MapReduce;
use crate::pool::Executor;
use std::io;
use std::sync::Arc;
use supmr_metrics::{Phase, PhaseTimer};

/// Execute `job` on the original runtime.
pub fn run<J: MapReduce>(
    job: &Arc<J>,
    input: Input,
    config: &JobConfig,
    exec: Executor<'_>,
) -> io::Result<JobResult<J::Key, J::Output>> {
    let mut timer = PhaseTimer::start_job();
    let mut stats = JobStats::default();
    let container = Arc::new(job.make_container());

    timer.begin(Phase::Ingest);
    let chunk = ingest_entire(input)?;
    timer.end(Phase::Ingest);
    stats.bytes_ingested = chunk.len() as u64;
    stats.ingest_chunks = 1;

    timer.begin(Phase::Map);
    let outcome = map_wave(job, &container, &chunk, config, exec);
    timer.end(Phase::Map);
    stats.map_rounds = 1;
    stats.map_tasks = outcome.tasks;
    stats.add_wave(outcome);
    drop(chunk); // input buffer freed before reduce, as in Phoenix++

    Ok(finish_job(job, container, config, exec, timer, stats))
}
