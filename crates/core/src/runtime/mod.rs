//! Job configuration, results, and the two runtimes.
//!
//! [`Job`] is the single entry surface (the paper's `run_ingestMR()`
//! API launches "in exactly the same way as the original library with a
//! few additional chunk-related parameters" — here those parameters live
//! in [`JobConfig`]); multi-stage work composes jobs into a [`Pipeline`]
//! ([`dag`]). Jobs with [`Chunking::None`] execute on the original
//! Phoenix++-style runtime ([`original`]); any other chunking strategy
//! engages the SupMR ingest chunk pipeline ([`pipeline`]). The reduce
//! and merge phases are shared — the merge backend is chosen by
//! [`MergeMode`], which is how experiments isolate the paper's two
//! modifications.

pub mod builder;
pub mod dag;
pub mod governor;
pub mod handoff;
pub mod metrics;
pub mod original;
pub mod pipeline;

pub use builder::Job;
pub use dag::{IterationReport, Pipeline, PipelineResult, Stage, StageId};
pub use governor::{ActionRecord, ActiveConfig, GovernorConfig, GovernorReport};
pub use handoff::{FrameIter, HandoffStats, StageData};
pub use metrics::{JobMetrics, StageMetrics};

use crate::api::{AccOf, MapReduce};
use crate::chunk::{Chunking, IngestChunk};
use crate::container::{Container, ContainerHooks, ContainerMetrics};
use crate::error::{panic_payload_string, Result, SupmrError};
use crate::pool::{Executor, PoolMetrics, PoolMode, WaveOutcome, WorkerPool};
use crate::spill::{
    DecodedRun, JobSpill, MemoryAccountant, PairCodec, SpillHooks, SpillMetrics, SpilledRun,
};
use crate::split::chunk_splits;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use supmr_merge::{merge_by_key, merge_fold, pairwise_merge_rounds, parallel_kway_merge};
use supmr_metrics::sampler::UtilizationSampler;
use supmr_metrics::{
    BottleneckReport, DebugState, DiagInputs, EventCallback, EventKind, FlowLedger, FlowPhase,
    JobTrace, Json, MetricsServer, MetricsSnapshot, Phase, PhaseTimer, PhaseTimings, Registry,
    StallStats, TraceLevel, TraceRing, Tracer, UtilTrace,
};
use supmr_storage::{
    DataSource, DiskRunStore, FileSet, RecordFormat, RunStore, SharedBytes, SourceExt,
};

/// Job input: one large byte stream or a set of small files — the two
/// Hadoop input shapes the paper's chunking strategies mirror — or a
/// chunk of bytes already resident in memory (a pipeline stage feeding
/// the next).
pub enum Input {
    /// A single byte-addressed input (Terasort shape).
    Stream(Box<dyn DataSource>),
    /// A set of small files (word count shape).
    Files(Box<dyn FileSet>),
    /// Bytes already resident in shared memory, with segment
    /// boundaries splits must respect — how a [`Pipeline`] stage's
    /// hand-off buffer enters the next stage with zero copies. Ingest
    /// is a no-op; chunked ingest strategies reject this shape.
    Resident(IngestChunk),
}

impl Input {
    /// Wrap a [`DataSource`].
    pub fn stream(source: impl DataSource + 'static) -> Input {
        Input::Stream(Box::new(source))
    }

    /// Wrap a [`FileSet`].
    pub fn files(files: impl FileSet + 'static) -> Input {
        Input::Files(Box::new(files))
    }

    /// Wrap an already-resident chunk of input bytes.
    pub fn resident(chunk: IngestChunk) -> Input {
        Input::Resident(chunk)
    }

    /// Total input bytes.
    pub fn total_bytes(&self) -> u64 {
        match self {
            Input::Stream(s) => s.len(),
            Input::Files(f) => f.total_len(),
            Input::Resident(c) => c.len() as u64,
        }
    }

    /// Human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Input::Stream(s) => s.describe(),
            Input::Files(f) => f.describe(),
            Input::Resident(c) => {
                format!("resident chunk ({} bytes, {} segments)", c.len(), c.segments.len())
            }
        }
    }
}

/// How the final output is ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// No ordering: reduce outputs are concatenated.
    Unsorted,
    /// The baseline runtime's merge: sort partitions in parallel, then
    /// iterative 2-way merge rounds with halving parallelism.
    PairwiseRounds,
    /// SupMR's merge: sort partitions in parallel, then one parallel
    /// p-way merge round.
    PWay {
        /// Output-partition parallelism of the p-way merge.
        ways: usize,
    },
}

/// Runtime configuration — the original Phoenix++ knobs plus SupMR's
/// "few additional chunk-related parameters".
#[derive(Clone)]
pub struct JobConfig {
    /// Mapper threads per map wave.
    pub map_workers: usize,
    /// Reducer threads (and reduce partition target).
    pub reduce_workers: usize,
    /// Input split size in bytes (the unit of map-task work).
    pub split_bytes: usize,
    /// Record framing, used for chunk and split boundary adjustment.
    pub record_format: RecordFormat,
    /// Ingest chunking strategy; `None` selects the original runtime.
    pub chunking: Chunking,
    /// Final merge behaviour.
    pub merge: MergeMode,
    /// Worker provisioning: fresh threads per wave (the paper's
    /// observable per-chunk overhead) or one persistent pool per job.
    pub pool: PoolMode,
    /// How many ingest chunks may be buffered ahead of the mappers.
    /// `1` is the paper's double-buffering (one ingest thread created
    /// and destroyed per round); larger values use one long-lived
    /// ingest thread with a bounded buffer of this depth.
    pub prefetch_depth: usize,
    /// If set, sample real CPU utilization at this interval for the
    /// duration of the job (collectl-style trace in the result).
    pub sample_utilization: Option<Duration>,
    /// Event-trace detail recorded into [`JobReport::trace`].
    pub trace: TraceLevel,
    /// Callback invoked synchronously on every trace event (requires
    /// `trace` to be enabled).
    pub on_event: Option<EventCallback>,
    /// Live metrics registry. When set, every layer (runtimes, pool,
    /// merge) maintains its `supmr.*` families here while the job runs,
    /// and [`JobReport::metrics`] carries a final snapshot.
    pub metrics: Option<Registry>,
    /// Serve a `/metrics` OpenMetrics scrape endpoint at this address
    /// (e.g. `"127.0.0.1:9400"`; port 0 picks a free port) for the
    /// duration of the job. Implies a registry: if [`JobConfig::metrics`]
    /// is unset, one is created for the run.
    pub metrics_addr: Option<String>,
    /// Seed for the container's key hasher. `Some` makes key→partition
    /// placement (and, with one worker, output order) reproducible
    /// across runs; `None` (default) keeps the per-container random
    /// seed, the HashDoS posture documented in DESIGN.md §3f.
    pub hash_seed: Option<u64>,
    /// Byte budget for the intermediate container. `Some` engages
    /// out-of-core execution: under memory pressure the container
    /// spills sorted runs to the spill store and the reduce phase
    /// switches to a streaming external merge (DESIGN.md §3g). Requires
    /// the application to provide a
    /// [`spill_codec`](crate::api::MapReduce::spill_codec) and the
    /// container to accept
    /// [`configure_spill`](crate::container::Container::configure_spill).
    pub memory_budget: Option<u64>,
    /// Directory for spill run files. `None` (default) uses a fresh
    /// per-job directory under the system temp dir, removed when the
    /// job completes. Ignored when [`JobConfig::spill_store`] is set.
    pub spill_dir: Option<PathBuf>,
    /// Explicit spill run store — how spill traffic joins the simulated
    /// storage environment (throttled, observed, fault-injected run
    /// stores stack like ingest sources do). `None` builds a plain
    /// [`DiskRunStore`] from [`JobConfig::spill_dir`].
    pub spill_store: Option<Arc<dyn RunStore>>,
    /// Per-phase bandwidth ledger feeding [`JobReport::diag`]. `None`
    /// (default) builds a job-private one; pass a shared ledger to fold
    /// in storage-level meters (e.g.
    /// `IngestMeter::with_flow`), which then own their phases and the
    /// runtime-level recorders stand down.
    pub flow: Option<Arc<FlowLedger>>,
    /// Run the feedback governor: a sampling thread that classifies the
    /// live metrics every interval and retunes scheduling widths,
    /// prefetch depth, the absorb sweep mask, and spill watermarks
    /// mid-job (DESIGN.md §3k). Implies a registry, like
    /// [`JobConfig::metrics_addr`]. Decisions are traced as
    /// [`EventKind::GovernorAction`] and summarized in
    /// [`JobReport::governor`].
    pub governor: Option<GovernorConfig>,
    /// Pre-built dynamic knobs, normally `None` and built by
    /// [`Job::run`] when [`JobConfig::governor`] is set. Public only so
    /// struct-update syntax (`..JobConfig::default()`) works across the
    /// crate boundary; inject a pre-built handle here to drive actuation
    /// sequences without a governor thread (the determinism tests do).
    #[doc(hidden)]
    pub active: Option<Arc<ActiveConfig>>,
}

impl std::fmt::Debug for JobConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobConfig")
            .field("map_workers", &self.map_workers)
            .field("reduce_workers", &self.reduce_workers)
            .field("split_bytes", &self.split_bytes)
            .field("record_format", &self.record_format)
            .field("chunking", &self.chunking)
            .field("merge", &self.merge)
            .field("pool", &self.pool)
            .field("prefetch_depth", &self.prefetch_depth)
            .field("sample_utilization", &self.sample_utilization)
            .field("trace", &self.trace)
            .field("on_event", &self.on_event.as_ref().map(|_| "<callback>"))
            .field("metrics", &self.metrics)
            .field("metrics_addr", &self.metrics_addr)
            .field("hash_seed", &self.hash_seed)
            .field("memory_budget", &self.memory_budget)
            .field("spill_dir", &self.spill_dir)
            .field("spill_store", &self.spill_store.as_ref().map(|s| s.describe()))
            .field("flow", &self.flow)
            .field("governor", &self.governor)
            .field("active", &self.active)
            .finish()
    }
}

impl Default for JobConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, usize::from);
        JobConfig {
            map_workers: workers,
            reduce_workers: workers,
            split_bytes: 1024 * 1024,
            record_format: RecordFormat::Newline,
            chunking: Chunking::None,
            merge: MergeMode::Unsorted,
            pool: PoolMode::default(),
            prefetch_depth: 1,
            sample_utilization: None,
            trace: TraceLevel::Off,
            on_event: None,
            metrics: None,
            metrics_addr: None,
            hash_seed: None,
            memory_budget: None,
            spill_dir: None,
            spill_store: None,
            flow: None,
            governor: None,
            active: None,
        }
    }
}

impl JobConfig {
    /// Check the configuration for inconsistent knobs — zero worker
    /// counts, a zero split or chunk size, `prefetch_depth == 0`, a
    /// zero-way p-way merge, a zero memory budget, an event callback
    /// without tracing, and the adaptive-chunking shape constraints.
    ///
    /// Every entry path ([`Job::run`], [`Pipeline::run`], the CLI)
    /// routes through this before any work starts.
    ///
    /// # Errors
    /// Returns [`SupmrError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: &str| Err(SupmrError::invalid_config(msg));
        if self.map_workers == 0 || self.reduce_workers == 0 {
            return bad("worker counts must be non-zero");
        }
        if self.split_bytes == 0 {
            return bad("split size must be non-zero");
        }
        match self.chunking {
            Chunking::Inter { chunk_bytes: 0 } | Chunking::Hybrid { chunk_bytes: 0 } => {
                bad("chunk size must be non-zero")
            }
            Chunking::Intra { files_per_chunk: 0 } => bad("files per chunk must be non-zero"),
            Chunking::Adaptive(a) => {
                if a.min_chunk_bytes == 0
                    || a.min_chunk_bytes > a.initial_chunk_bytes
                    || a.initial_chunk_bytes > a.max_chunk_bytes
                    || !(a.overhead_fraction > 0.0 && a.overhead_fraction < 1.0)
                {
                    bad("adaptive chunking needs 0 < min <= initial <= max and a fraction in (0,1)")
                } else if self.prefetch_depth > 1 {
                    // Feedback cannot reach a chunker owned by the
                    // buffered ingest thread.
                    bad("adaptive chunking requires prefetch_depth == 1")
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }?;
        if self.prefetch_depth == 0 {
            return bad("prefetch depth must be at least 1");
        }
        if let MergeMode::PWay { ways: 0 } = self.merge {
            return bad("p-way merge needs at least one way");
        }
        if let RecordFormat::FixedWidth(0) = self.record_format {
            return bad("record width must be non-zero");
        }
        if self.on_event.is_some() && !self.trace.enabled() {
            return bad("an on_event callback requires trace level wave or task");
        }
        if self.memory_budget == Some(0) {
            return bad("a memory budget must be non-zero (omit it to run unbounded)");
        }
        if let Some(g) = &self.governor {
            if g.interval.is_zero() {
                return bad("the governor sampling interval must be non-zero");
            }
            if g.hysteresis == 0 {
                return bad("governor hysteresis must be at least 1 tick");
            }
        }
        Ok(())
    }

    /// Effective map wave width: the governor's dynamic knob when one
    /// is live, else the static [`JobConfig::map_workers`].
    pub(crate) fn effective_map_workers(&self) -> usize {
        self.active.as_ref().map_or(self.map_workers, |a| a.map_width())
    }

    /// Effective reduce wave width (scheduling only — partition counts
    /// always come from the static [`JobConfig::reduce_workers`]).
    pub(crate) fn effective_reduce_workers(&self) -> usize {
        self.active.as_ref().map_or(self.reduce_workers, |a| a.reduce_width())
    }

    /// Cooperative cancellation point: fail with
    /// [`SupmrError::Cancelled`] once any holder of the job's
    /// [`ActiveConfig`] has called `cancel()`. Checked at round and
    /// phase boundaries, so a cancelled job stops within one wave.
    pub(crate) fn check_cancelled(&self) -> Result<()> {
        match &self.active {
            Some(a) if a.is_cancelled() => Err(SupmrError::Cancelled),
            _ => Ok(()),
        }
    }
}

/// Measured timeline of one pipeline round — the Fig. 2/Fig. 4
/// mechanism ("ingest chunks are read into memory while mapper threads
/// operate on earlier chunks") as observed data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Bytes of the chunk mapped this round.
    pub chunk_bytes: u64,
    /// Time the overlapped ingest of the *next* chunk took.
    pub ingest: Duration,
    /// Time this round's map wave took.
    pub map: Duration,
}

/// Execution counters for one job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobStats {
    /// Bytes read from primary storage.
    pub bytes_ingested: u64,
    /// Ingest chunks processed (1 for the original runtime).
    pub ingest_chunks: u32,
    /// Map waves executed (1 for the original runtime, one per chunk for
    /// the pipeline).
    pub map_rounds: u32,
    /// Map tasks (input splits) executed.
    pub map_tasks: u64,
    /// Reduce tasks (partitions) executed.
    pub reduce_tasks: u64,
    /// Threads spawned across all waves plus ingest threads — the
    /// recurring thread cost the chunk-size discussion is about. With
    /// [`PoolMode::Persistent`] the pool's threads are counted exactly
    /// once, at job start.
    pub threads_spawned: u64,
    /// Pool-thread dispatches that replaced a spawn — the per-wave cost
    /// a persistent pool avoided (0 in [`PoolMode::WavePerRound`]).
    pub threads_reused: u64,
    /// Intermediate pairs emitted by map (pre-combining).
    pub intermediate_pairs: u64,
    /// Distinct intermediate keys.
    pub distinct_keys: u64,
    /// Final output pairs.
    pub output_pairs: u64,
    /// Merge rounds executed (0 = unsorted, 1 = p-way, log₂ = pairwise).
    pub merge_rounds: u32,
    /// Elements written during merging across all rounds (the
    /// "re-scanning" cost; equals output pairs for a single-pass merge).
    pub merge_elements_moved: u64,
    /// Per-round pipeline timeline (empty for the original runtime and
    /// for `prefetch_depth > 1`, where rounds are not individually
    /// bounded).
    pub rounds: Vec<RoundRecord>,
    /// Total time the map side sat idle waiting for a chunk's ingest to
    /// complete — the pipeline was ingest-bound for this long. Always
    /// accounted, independent of the trace level.
    pub map_waiting: Duration,
    /// Total time the ingest side sat idle waiting for the mappers to
    /// release the buffer — the pipeline was map-bound for this long.
    pub ingest_waiting: Duration,
    /// Sorted run files spilled under the memory budget (0 without a
    /// budget or when the intermediate set stayed under it).
    pub spill_runs: u64,
    /// Framed bytes written into spill run files.
    pub spill_bytes: u64,
}

impl JobStats {
    fn add_wave(&mut self, outcome: WaveOutcome) {
        self.threads_spawned += outcome.threads_spawned;
        self.threads_reused += outcome.threads_reused;
    }
}

/// Everything measured about a finished job, in one handle with a
/// stable JSON rendering: phase timings (a Table II row), execution
/// counters with stall accounting, and the optional utilization and
/// event traces.
#[derive(Debug, Clone, Default)]
pub struct JobReport {
    /// Per-phase wall-clock breakdown (a Table II row).
    pub timings: PhaseTimings,
    /// Execution counters, including stall totals.
    pub stats: JobStats,
    /// CPU utilization trace, when sampling was requested.
    pub util: Option<UtilTrace>,
    /// Typed event trace, when tracing was enabled.
    pub trace: Option<JobTrace>,
    /// Final snapshot of the live metrics registry, when one was
    /// attached ([`JobConfig::metrics`] / [`JobConfig::metrics_addr`]).
    pub metrics: Option<MetricsSnapshot>,
    /// Per-stage breakdown, in completion order. Empty for single-stage
    /// jobs run outside a [`Pipeline`].
    pub stages: Vec<StageReport>,
    /// Bottleneck diagnosis: per-phase achieved bandwidth plus the
    /// classifier's verdict (`supmr.diag.v1`). Always computed for jobs
    /// run through [`Job::run`] / [`Pipeline::run`].
    pub diag: Option<BottleneckReport>,
    /// Feedback-governor action log and final knob positions
    /// (`supmr.governor.v1`), present when the job ran with
    /// [`JobConfig::governor`] set.
    pub governor: Option<GovernorReport>,
}

/// One pipeline stage's slice of the [`JobReport`].
#[derive(Debug, Clone, Default)]
pub struct StageReport {
    /// The stage's name, as given to [`Stage::new`].
    pub name: String,
    /// Scheduling index of the stage within its pipeline.
    pub stage: u32,
    /// Pipeline iteration this execution belongs to (0 except under
    /// [`Pipeline::until`]).
    pub iteration: u64,
    /// The stage's own phase timings.
    pub timings: PhaseTimings,
    /// The stage's own execution counters.
    pub stats: JobStats,
    /// Hand-off counters, when the stage fed a downstream stage.
    pub handoff: Option<HandoffStats>,
}

impl StageReport {
    fn to_json(&self) -> Json {
        let us = |d: Duration| Json::from(d.as_micros() as u64);
        let handoff = match &self.handoff {
            Some(h) => Json::obj(vec![
                ("pairs", Json::from(h.pairs)),
                ("bytes", Json::from(h.bytes)),
                ("segments", Json::from(h.segments)),
                ("materialized_pairs", Json::from(h.materialized_pairs)),
            ]),
            None => Json::Null,
        };
        Json::obj(vec![
            ("name", Json::str(self.name.as_str())),
            ("stage", Json::from(u64::from(self.stage))),
            ("iteration", Json::from(self.iteration)),
            ("total_us", us(self.timings.total())),
            ("output_pairs", Json::from(self.stats.output_pairs)),
            ("spill_runs", Json::from(self.stats.spill_runs)),
            ("handoff", handoff),
        ])
    }
}

impl JobReport {
    /// Summed pipeline stall time by side.
    pub fn stalls(&self) -> StallStats {
        StallStats {
            map_waiting: self.stats.map_waiting,
            ingest_waiting: self.stats.ingest_waiting,
        }
    }

    /// The report as a JSON value with the stable
    /// `supmr.job_report.v1` schema. Full event traces are exported
    /// separately ([`supmr_metrics::chrome`]); here the trace appears
    /// as a summary (thread/event counts).
    pub fn to_json(&self) -> Json {
        let us = |d: Duration| Json::from(d.as_micros() as u64);
        let timings = Json::obj(vec![
            ("total_us", us(self.timings.total())),
            ("ingest_us", us(self.timings.phase(Phase::Ingest))),
            ("map_us", us(self.timings.phase(Phase::Map))),
            ("reduce_us", us(self.timings.phase(Phase::Reduce))),
            ("merge_us", us(self.timings.phase(Phase::Merge))),
            ("fused_ingest_map", Json::Bool(self.timings.is_fused())),
        ]);
        let s = &self.stats;
        let rounds = Json::Arr(
            s.rounds
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("chunk_bytes", Json::from(r.chunk_bytes)),
                        ("ingest_us", us(r.ingest)),
                        ("map_us", us(r.map)),
                    ])
                })
                .collect(),
        );
        let stats = Json::obj(vec![
            ("bytes_ingested", Json::from(s.bytes_ingested)),
            ("ingest_chunks", Json::from(u64::from(s.ingest_chunks))),
            ("map_rounds", Json::from(u64::from(s.map_rounds))),
            ("map_tasks", Json::from(s.map_tasks)),
            ("reduce_tasks", Json::from(s.reduce_tasks)),
            ("threads_spawned", Json::from(s.threads_spawned)),
            ("threads_reused", Json::from(s.threads_reused)),
            ("intermediate_pairs", Json::from(s.intermediate_pairs)),
            ("distinct_keys", Json::from(s.distinct_keys)),
            ("output_pairs", Json::from(s.output_pairs)),
            ("merge_rounds", Json::from(u64::from(s.merge_rounds))),
            ("merge_elements_moved", Json::from(s.merge_elements_moved)),
            ("spill_runs", Json::from(s.spill_runs)),
            ("spill_bytes", Json::from(s.spill_bytes)),
            ("rounds", rounds),
        ]);
        let stalls = Json::obj(vec![
            ("map_waiting_us", us(s.map_waiting)),
            ("ingest_waiting_us", us(s.ingest_waiting)),
        ]);
        let util = match &self.util {
            Some(u) => Json::obj(vec![
                ("available", Json::Bool(!u.is_unavailable())),
                ("samples", Json::from(u.samples().len() as u64)),
                ("duration_s", Json::Num(u.duration())),
            ]),
            None => Json::Null,
        };
        let trace = match &self.trace {
            Some(t) => Json::obj(vec![
                ("threads", Json::from(t.threads.len() as u64)),
                ("events", Json::from(t.event_count() as u64)),
            ]),
            None => Json::Null,
        };
        let metrics = match &self.metrics {
            Some(m) => m.to_json(),
            None => Json::Null,
        };
        let stages = Json::Arr(self.stages.iter().map(StageReport::to_json).collect());
        let diag = match &self.diag {
            Some(d) => d.to_json(),
            None => Json::Null,
        };
        let governor = match &self.governor {
            Some(g) => g.to_json(),
            None => Json::Null,
        };
        Json::obj(vec![
            ("schema", Json::str("supmr.job_report.v1")),
            ("timings", timings),
            ("stats", stats),
            ("stalls", stalls),
            ("stages", stages),
            ("diag", diag),
            ("governor", governor),
            ("util", util),
            ("trace", trace),
            ("metrics", metrics),
        ])
    }

    /// [`to_json`](JobReport::to_json) rendered as compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

/// A finished job: output pairs plus the [`JobReport`] every experiment
/// consumes.
#[derive(Debug)]
pub struct JobResult<K, O> {
    /// Reduced output pairs, ordered according to [`MergeMode`].
    pub pairs: Vec<(K, O)>,
    /// Everything measured about the run.
    pub report: JobReport,
}

impl<K: Ord + Clone, O: Clone> JobResult<K, O> {
    /// The output pairs sorted by key (stable), regardless of merge mode
    /// — convenient for assertions.
    pub fn sorted_pairs(&self) -> Vec<(K, O)> {
        let mut v = self.pairs.clone();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

/// What one stage hands back: either the job's terminal pairs or a
/// framed hand-off buffer for the next stage.
pub(crate) enum StageOutput<K, O> {
    /// Terminal output, merged per [`MergeMode`].
    Pairs(Vec<(K, O)>),
    /// Framed bytes for the downstream stage (non-terminal stages).
    Handoff(StageData),
}

/// One executed stage: its output plus its own report.
pub(crate) struct StageResult<K, O> {
    pub output: StageOutput<K, O>,
    pub report: JobReport,
}

/// Pipeline-level wiring threaded into one stage execution. Default
/// wiring (no hand-off codec, job-private accountant, empty run prefix)
/// is the degenerate single-stage case.
pub(crate) struct StageWiring<J: MapReduce> {
    /// When set, the stage's reduced output is encoded through this
    /// codec into a [`StageData`] instead of materializing pairs.
    pub handoff: Option<PairCodec<J::Key, J::Output>>,
    /// A pipeline-shared byte ledger; `None` builds a per-job one.
    pub accountant: Option<Arc<MemoryAccountant>>,
    /// Prefix for spill run names, so concurrent stages sharing one
    /// run store never collide.
    pub run_prefix: String,
}

impl<J: MapReduce> Default for StageWiring<J> {
    fn default() -> Self {
        StageWiring { handoff: None, accountant: None, run_prefix: String::new() }
    }
}

/// Execute one stage: dispatch to the original runtime
/// ([`Chunking::None`]) or the SupMR ingest chunk pipeline, converting
/// a panic inside a user map/reduce function into
/// [`SupmrError::TaskPanic`] so a crashing task fails the job instead
/// of the process. The shared dispatch core under [`Job::run`] and
/// [`Pipeline::run`].
pub(crate) fn run_stage<J: MapReduce>(
    job: &Arc<J>,
    input: Input,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    wiring: StageWiring<J>,
) -> Result<StageResult<J::Key, J::Output>> {
    let dispatch = catch_unwind(AssertUnwindSafe(|| match config.chunking {
        Chunking::None => original::run(job, input, config, exec, tracer, wiring),
        _ => pipeline::run(job, input, config, exec, tracer, wiring),
    }));
    match dispatch {
        Ok(stage_result) => stage_result,
        Err(payload) => Err(SupmrError::TaskPanic { payload: panic_payload_string(payload) }),
    }
}

/// Host-provided facilities for running a job inside a larger serving
/// process: a shared persistent [`WorkerPool`] instead of a job-private
/// one, a pre-built byte ledger (a tenant's partition of a global
/// budget), and a run-name prefix so concurrent jobs sharing one spill
/// store never collide. [`Job::run`] is the degenerate case where
/// everything is job-private.
#[derive(Default)]
pub struct SharedRun<'p> {
    /// Dispatch waves onto this pool rather than provisioning one.
    /// Overrides [`JobConfig::pool`]; the pool's spawn cost is the
    /// host's, so `threads_spawned` stays 0 for the job.
    pub pool: Option<&'p WorkerPool>,
    /// A host-built [`MemoryAccountant`] (gauge already attached); the
    /// job budgets against it instead of building its own.
    pub accountant: Option<Arc<MemoryAccountant>>,
    /// Prefix for this job's spill run names.
    pub run_prefix: String,
}

/// The single-stage orchestration behind [`Job::run`]: validate, stand
/// up the job-scoped facilities (metrics registry + scrape server,
/// tracer, utilization sampler, persistent pool), run the one stage,
/// and fold the teardown artifacts into the report.
pub(crate) fn run_single<J: MapReduce>(
    job: J,
    input: Input,
    config: JobConfig,
) -> Result<JobResult<J::Key, J::Output>> {
    run_with(job, input, config, SharedRun::default())
}

/// Run one job against host-shared facilities ([`SharedRun`]) — the
/// serve daemon's per-job entry point. Behaves exactly like
/// [`Job::run`] when `shared` is default.
pub fn run_with<J: MapReduce>(
    job: J,
    input: Input,
    mut config: JobConfig,
    shared: SharedRun<'_>,
) -> Result<JobResult<J::Key, J::Output>> {
    config.validate()?;
    // A scrape endpoint implies a registry for it to expose; so does
    // the governor, which samples one.
    if (config.metrics_addr.is_some() || config.governor.is_some()) && config.metrics.is_none() {
        config.metrics = Some(Registry::new());
    }
    let registry = config.metrics.clone();
    let flow = flow_ledger(&mut config);
    // A live server with tracing on gets a bounded event ring behind
    // `/debug/trace`; composed into the tracer's callback below.
    let ring = (config.metrics_addr.is_some() && config.trace.enabled())
        .then(|| TraceRing::new(TraceRing::DEFAULT_CAP));
    let server = match (&config.metrics_addr, &registry) {
        (Some(addr), Some(r)) => {
            let mut state = DebugState::new(r.clone());
            if let Some(ring) = &ring {
                state = state.with_ring(Arc::clone(ring));
            }
            Some(MetricsServer::serve_debug(addr, state).map_err(|e| {
                SupmrError::invalid_config(format!("cannot serve metrics on {addr}: {e}"))
            })?)
        }
        _ => None,
    };
    let callback = compose_callbacks(config.on_event.clone(), ring.map(|r| r.callback()));
    let tracer = Tracer::new(config.trace, callback);
    let sampler = config.sample_utilization.map(UtilizationSampler::start);
    let job = Arc::new(job);
    let pool = (shared.pool.is_none() && config.pool == PoolMode::Persistent).then(|| {
        WorkerPool::new_instrumented(
            config.map_workers.max(config.reduce_workers),
            tracer.clone(),
            registry.as_ref().map(PoolMetrics::register),
        )
    });
    let exec = match (shared.pool, &pool) {
        (Some(host), _) => Executor::Pool(host),
        (None, Some(p)) => Executor::Pool(p),
        (None, None) => Executor::Wave,
    };
    // Stand up the feedback governor: shared dynamic knobs seeded from
    // the static widths, plus the sampling thread that moves them.
    let governor = config.governor.map(|g| {
        let active = config.active.get_or_insert_with(|| {
            Arc::new(ActiveConfig::new(
                config.map_workers,
                config.reduce_workers,
                config.prefetch_depth,
            ))
        });
        governor::GovernorRuntime::spawn(
            g,
            config.metrics.clone().expect("the governor implies a registry"),
            Arc::clone(active),
            tracer.clone(),
            governor::GovernorLimits {
                map_base: config.map_workers,
                reduce_cap: config.map_workers.max(config.reduce_workers),
            },
        )
    });
    let wiring =
        StageWiring { handoff: None, accountant: shared.accountant, run_prefix: shared.run_prefix };
    let stage = run_stage(&job, input, &config, exec, &tracer, wiring)?;
    let mut result = match stage.output {
        StageOutput::Pairs(pairs) => JobResult { pairs, report: stage.report },
        StageOutput::Handoff(_) => unreachable!("single-stage wiring requests no hand-off"),
    };
    if let Some(p) = &pool {
        // The pool's one-time spawn cost, counted once per job.
        result.report.stats.threads_spawned += p.size() as u64;
    }
    if let Some(s) = sampler {
        result.report.util = Some(s.stop());
    }
    if tracer.level().enabled() {
        result.report.trace = Some(tracer.finish());
    }
    if let Some(g) = governor {
        result.report.governor = Some(g.stop());
    }
    if let Some(r) = &registry {
        result.report.metrics = Some(r.snapshot());
    }
    result.report.diag = Some(diagnose(&result.report, &flow, &config));
    if let Some(s) = server {
        s.shutdown();
    }
    Ok(result)
}

/// The job's flow ledger: the one from the config (shared with
/// storage-level meters), or a fresh job-private one written back so
/// both runtimes see it. Either way it mirrors into the registry when
/// one is live.
pub(crate) fn flow_ledger(config: &mut JobConfig) -> Arc<FlowLedger> {
    let flow = Arc::clone(config.flow.get_or_insert_with(|| Arc::new(FlowLedger::new())));
    if let Some(r) = &config.metrics {
        flow.attach_registry(r);
    }
    flow
}

/// Compose the user's event callback with the debug ring's, preserving
/// `None` when neither exists (the tracer's zero-cost path).
pub(crate) fn compose_callbacks(
    user: Option<EventCallback>,
    ring: Option<EventCallback>,
) -> Option<EventCallback> {
    match (user, ring) {
        (Some(a), Some(b)) => Some(Arc::new(move |event| {
            a(event);
            b(event);
        })),
        (a, None) => a,
        (None, b) => b,
    }
}

/// Fold a finished report plus the flow ledger into the classifier's
/// inputs and run it — the report-time counterpart of the live
/// `/debug/diag` endpoint.
pub(crate) fn diagnose(
    report: &JobReport,
    flow: &FlowLedger,
    config: &JobConfig,
) -> BottleneckReport {
    let us = |d: Duration| d.as_micros() as u64;
    let t = &report.timings;
    let snapshot_hist_sum = |name: &str| {
        report
            .metrics
            .as_ref()
            .map(|snap| {
                snap.entries
                    .iter()
                    .filter(|e| e.name == name)
                    .filter_map(|e| match &e.value {
                        supmr_metrics::MetricValue::Histogram(h) => Some(h.sum),
                        _ => None,
                    })
                    .sum()
            })
            .unwrap_or(0)
    };
    let inputs = DiagInputs {
        wall_us: us(t.total()),
        // When ingest is fused into the map rounds there is no serial
        // ingest phase; the stall counters carry the pressure signal.
        ingest_us: if t.is_fused() { 0 } else { us(t.phase(Phase::Ingest)) },
        map_us: us(t.phase(Phase::Map)),
        merge_us: us(t.phase(Phase::Merge)),
        map_stall_us: us(report.stats.map_waiting),
        ingest_stall_us: us(report.stats.ingest_waiting),
        absorb_wait_us: snapshot_hist_sum("supmr.container.absorb_wait_us"),
        map_workers: config.map_workers.max(1) as u64,
        budget_bytes: config.memory_budget.unwrap_or(0),
        resident_bytes: report
            .metrics
            .as_ref()
            .and_then(|snap| {
                snap.entries.iter().find(|e| e.name == "supmr.spill.resident_bytes").and_then(|e| {
                    match &e.value {
                        supmr_metrics::MetricValue::Gauge(v) => Some((*v).max(0) as u64),
                        _ => None,
                    }
                })
            })
            .unwrap_or(0),
        spill_runs: report.stats.spill_runs,
        spill_bytes: report.stats.spill_bytes,
        spill_busy_us: us(flow.busy(FlowPhase::Spill)) + us(flow.busy(FlowPhase::Merge)),
        flows: flow.snapshot(),
    };
    BottleneckReport::from_inputs(inputs)
}

/// Read the entire input into one resident chunk (the original runtime's
/// ingest phase). File inputs keep per-file segment boundaries.
///
/// Sources whose bytes are already resident in shared memory
/// ([`DataSource::shared`]) are wrapped zero-copy; everything else is
/// read once and sealed into a [`SharedBytes`] allocation.
pub(crate) fn ingest_entire(input: Input) -> io::Result<IngestChunk> {
    match input {
        Input::Resident(chunk) => Ok(chunk),
        Input::Stream(mut s) => {
            let total = s.len();
            let data = match s.shared().filter(|b| b.len() as u64 == total) {
                Some(resident) => resident,
                None => SharedBytes::from(s.read_all()?),
            };
            #[allow(clippy::single_range_in_vec_init)] // one segment covering everything
            let segments = vec![0..data.len()];
            Ok(IngestChunk { index: 0, offset: 0, segments, data })
        }
        Input::Files(mut f) => {
            if f.file_count() == 1 {
                if let Some(data) = f.shared_file(0) {
                    #[allow(clippy::single_range_in_vec_init)] // one segment covering everything
                    let segments = vec![0..data.len()];
                    return Ok(IngestChunk { index: 0, offset: 0, segments, data });
                }
            }
            let mut data = Vec::new();
            let mut segments = Vec::with_capacity(f.file_count());
            for i in 0..f.file_count() {
                let start = data.len();
                data.extend_from_slice(&f.read_file(i)?);
                segments.push(start..data.len());
            }
            Ok(IngestChunk { index: 0, offset: 0, segments, data: SharedBytes::from(data) })
        }
    }
}

/// Run one map wave over a chunk's splits.
///
/// Tasks get `'static` clones of the job, container, and chunk buffer —
/// all `Arc`-backed, so no chunk bytes are copied — which lets the same
/// closure run on scoped wave threads or long-lived pool threads.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by both runtimes
pub(crate) fn map_wave<J: MapReduce>(
    job: &Arc<J>,
    container: &Arc<J::Container>,
    chunk: &IngestChunk,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    metrics: Option<&Arc<JobMetrics>>,
    round: u32,
) -> WaveOutcome {
    let splits = chunk_splits(chunk, config.split_bytes, config.record_format);
    tracer.emit(EventKind::MapWaveStart { round, tasks: splits.len() as u64 });
    if let Some(m) = metrics {
        m.wave_tasks.record(splits.len() as u64);
    }
    let job = Arc::clone(job);
    let container = Arc::clone(container);
    let data = chunk.data.clone();
    let task_tracer = tracer.level().tasks().then(|| tracer.clone());
    let task_metrics = metrics.cloned();
    let task_flow = config.flow.clone();
    let outcome = exec.run(config.effective_map_workers(), splits, move |idx, range| {
        if let Some(t) = &task_tracer {
            t.emit(EventKind::MapTaskStart { round, task: idx as u64, bytes: range.len() as u64 });
        }
        // RAII occupancy guard + latency sample: both survive a
        // panicking `map` (the guard restores the gauge on unwind).
        let started = task_metrics.as_ref().map(|m| (m.map_in_flight.track(1), Instant::now()));
        let flow_t0 = task_flow.as_ref().map(|_| Instant::now());
        if let Some(m) = &task_metrics {
            m.scan_bytes.add(range.len() as u64);
        }
        let scanned = range.len() as u64;
        let mut local = container.local();
        job.map(&data[range], &mut local);
        container.absorb(local);
        if let (Some(f), Some(t0)) = (&task_flow, flow_t0) {
            f.record_owned(FlowPhase::Map, scanned, t0.elapsed());
        }
        if let (Some(m), Some((_guard, t0))) = (&task_metrics, started) {
            m.map_task_us.record_duration_us(t0.elapsed());
        }
        if let Some(t) = &task_tracer {
            t.emit(EventKind::MapTaskEnd { round, task: idx as u64 });
        }
    });
    tracer.emit(EventKind::MapWaveEnd { round });
    outcome
}

/// One job's shared out-of-core state, typed by the application.
type SpillOf<J> = Arc<JobSpill<<J as MapReduce>::Key, AccOf<J>>>;

/// One sorted source feeding the external merge: an in-memory drain or
/// a decoded run file.
type MergeSource<J> = Box<dyn Iterator<Item = (<J as MapReduce>::Key, AccOf<J>)>>;

/// The wiring a runtime hands its freshly built container: the job's
/// hash seed and, when a registry is live, the `supmr.container.*`
/// metric handles.
pub(crate) fn container_hooks(config: &JobConfig) -> ContainerHooks {
    ContainerHooks {
        hash_seed: config.hash_seed,
        metrics: config.metrics.as_ref().map(ContainerMetrics::register),
        active: config.active.clone(),
    }
}

/// The out-of-core wiring for one job, when
/// [`JobConfig::memory_budget`] is set: build the run store (explicit
/// store > spill dir > fresh temp dir), the byte ledger, and the
/// job-level spill sink, then hand the container its [`SpillHooks`].
///
/// Fails with [`SupmrError::InvalidConfig`] when the application has no
/// [`spill_codec`](MapReduce::spill_codec) or the container refuses to
/// spill — a budget the runtime cannot honor must not silently run
/// unbounded.
pub(crate) fn setup_spill<J: MapReduce>(
    job: &Arc<J>,
    container: &J::Container,
    config: &JobConfig,
    tracer: &Tracer,
    wiring: &StageWiring<J>,
) -> Result<Option<SpillOf<J>>> {
    let Some(budget) = config.memory_budget else { return Ok(None) };
    let codec = job.spill_codec().ok_or_else(|| {
        SupmrError::invalid_config(
            "memory_budget is set but the application provides no spill codec",
        )
    })?;
    let (store, cleanup): (Arc<dyn RunStore>, Option<PathBuf>) =
        match (&config.spill_store, &config.spill_dir) {
            (Some(store), _) => (Arc::clone(store), None),
            (None, Some(dir)) => (Arc::new(DiskRunStore::create(dir)?), None),
            (None, None) => {
                // Unique per job within the process; removed (with the
                // runs already gone) when the spill state drops.
                static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);
                let dir = std::env::temp_dir().join(format!(
                    "supmr-spill-{}-{}",
                    std::process::id(),
                    SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                (Arc::new(DiskRunStore::create(&dir)?), Some(dir))
            }
        };
    let metrics = config.metrics.as_ref().map(SpillMetrics::register);
    let accountant = match &wiring.accountant {
        // A pipeline-shared ledger arrives fully built (gauge attached
        // at pipeline start); all stages budget against it together.
        Some(shared) => Arc::clone(shared),
        None => {
            let mut accountant = MemoryAccountant::new(budget);
            if let Some(m) = &metrics {
                m.budget_bytes.set(budget.min(i64::MAX as u64) as i64);
                accountant = accountant.with_gauge(m.resident_bytes.clone());
            }
            Arc::new(accountant)
        }
    };
    // The governor's low-watermark lever reaches the ledger here.
    if let Some(active) = &config.active {
        active.attach_accountant(Arc::clone(&accountant));
    }
    let spill = Arc::new(JobSpill::new(
        Arc::clone(&accountant),
        codec,
        store,
        metrics,
        tracer.clone(),
        cleanup,
        wiring.run_prefix.clone(),
        config.flow.clone(),
    ));
    let sink = {
        let spill = Arc::clone(&spill);
        Arc::new(move |partition: usize, pairs: Vec<(J::Key, AccOf<J>)>| {
            spill.spill_partition(partition, pairs);
        })
    };
    let hooks = SpillHooks {
        accountant,
        partitions: config.reduce_workers,
        size_hint: codec.size_hint,
        sink,
    };
    if !container.configure_spill(&hooks) {
        return Err(SupmrError::invalid_config(
            "memory_budget is set but the job's container does not support spilling",
        ));
    }
    Ok(Some(spill))
}

/// One reduce task's output: materialized pairs, or (on the streamed
/// hand-off path) codec-framed bytes with no pair `Vec` ever built.
struct PartOut<K, O> {
    pairs: Vec<(K, O)>,
    frames: handoff::FrameBuf,
}

impl<K, O> PartOut<K, O> {
    fn from_pairs(pairs: Vec<(K, O)>) -> Self {
        PartOut { pairs, frames: handoff::FrameBuf::default() }
    }

    fn from_frames(frames: handoff::FrameBuf) -> Self {
        PartOut { pairs: Vec::new(), frames }
    }
}

/// Shared tail of both runtimes: reduce, merge, and result assembly.
/// With spilled runs on disk the reduce phase runs as a streaming
/// external merge per partition; otherwise it is the in-memory
/// drain-and-reduce wave. With a hand-off codec in the wiring the
/// output is a framed [`StageData`] for the next stage instead of
/// terminal pairs — streamed pair-by-pair out of the reduce workers
/// when the stage's merge mode is [`MergeMode::Unsorted`], or encoded
/// after the merge (and counted as materialized) otherwise.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by both runtimes
pub(crate) fn finish_job<J: MapReduce>(
    job: &Arc<J>,
    container: Arc<J::Container>,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    metrics: Option<&Arc<JobMetrics>>,
    spill: Option<Arc<JobSpill<J::Key, AccOf<J>>>>,
    mut timer: PhaseTimer,
    mut stats: JobStats,
    wiring: StageWiring<J>,
) -> Result<StageResult<J::Key, J::Output>> {
    stats.intermediate_pairs = container.total_pairs();
    stats.distinct_keys = container.distinct_keys() as u64;

    // Every map task dropped its container clone before its wave
    // reported completion (see `WorkerPool::run_collect`), so by now the
    // runtime holds the only reference.
    let container = Arc::into_inner(container)
        .expect("map tasks release their container handles before the wave ends");

    // A run that failed to write means the intermediate set is
    // incomplete: surface the parked fault before reducing over it.
    if let Some(sp) = &spill {
        sp.check().map_err(|source| SupmrError::Ingest { chunk: None, source })?;
        stats.spill_runs = sp.runs_written();
        stats.spill_bytes = sp.bytes_written();
    }

    config.check_cancelled()?;
    // Stream reduced pairs straight into frames only when no merge
    // reorders them afterwards; a sorted hand-off must materialize.
    let streamed = wiring.handoff.filter(|_| matches!(config.merge, MergeMode::Unsorted));
    timer.begin(Phase::Reduce);
    let reduce_t0 = Instant::now();
    let reduced = match &spill {
        Some(sp) if sp.runs_written() > 0 => {
            external_reduce(job, container, sp, config, exec, tracer, &mut stats, streamed)?
        }
        _ => in_memory_reduce(job, container, config, exec, tracer, metrics, &mut stats, streamed),
    };
    let reduce_elapsed = reduce_t0.elapsed();
    timer.end(Phase::Reduce);
    // Run guards have deleted their files inside the reduce tasks; this
    // removes the per-job temp spill directory, when we created one.
    drop(spill);

    let output = match wiring.handoff {
        Some(_) if streamed.is_some() => {
            let data = handoff::assemble(reduced.into_iter().map(|p| p.frames).collect(), false);
            stats.output_pairs = data.stats.pairs;
            if let Some(f) = &config.flow {
                // The framed bytes crossed the stage boundary over the
                // reduce span that encoded them.
                f.record_owned(FlowPhase::Shuffle, data.stats.bytes, reduce_elapsed);
            }
            StageOutput::Handoff(data)
        }
        Some(codec) => {
            // Sorted hand-off: merge the materialized pairs, then frame
            // them as one segment. Every pair counts as materialized.
            timer.begin(Phase::Merge);
            let pairs = merge_phase::<J>(
                reduced.into_iter().map(|p| p.pairs).collect(),
                config,
                exec,
                tracer,
                metrics,
                &mut stats,
            );
            timer.end(Phase::Merge);
            stats.output_pairs = pairs.len() as u64;
            let encode_t0 = Instant::now();
            let mut frames = handoff::FrameBuf::default();
            for (k, o) in &pairs {
                frames.push(codec, k, o);
            }
            let data = handoff::assemble(vec![frames], true);
            if let Some(f) = &config.flow {
                f.record_owned(FlowPhase::Shuffle, data.stats.bytes, encode_t0.elapsed());
            }
            StageOutput::Handoff(data)
        }
        None => {
            timer.begin(Phase::Merge);
            let pairs = merge_phase::<J>(
                reduced.into_iter().map(|p| p.pairs).collect(),
                config,
                exec,
                tracer,
                metrics,
                &mut stats,
            );
            timer.end(Phase::Merge);
            stats.output_pairs = pairs.len() as u64;
            StageOutput::Pairs(pairs)
        }
    };

    if let Some(m) = metrics {
        m.jobs_completed.inc();
    }
    Ok(StageResult {
        output,
        report: JobReport {
            timings: timer.finish(),
            stats,
            util: None,
            trace: None,
            metrics: None,
            stages: Vec::new(),
            diag: None,
            governor: None,
        },
    })
}

/// The in-memory reduce wave: decompose the container into per-partition
/// drain payloads (cheap, here) and materialize each on a reduce worker
/// (the expensive part), fused with that partition's reduce so the pairs
/// stay hot in the worker's cache. With `encode` set, each reduced pair
/// is framed straight into the partition's hand-off buffer instead of a
/// pair `Vec` — the streamed stage boundary.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by both runtimes
fn in_memory_reduce<J: MapReduce>(
    job: &Arc<J>,
    container: J::Container,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    metrics: Option<&Arc<JobMetrics>>,
    stats: &mut JobStats,
    encode: Option<PairCodec<J::Key, J::Output>>,
) -> Vec<PartOut<J::Key, J::Output>> {
    let drains = container.into_drains(config.reduce_workers);
    tracer.emit(EventKind::ReduceWaveStart { partitions: drains.len() as u64 });
    let reduce_job = Arc::clone(job);
    let task_tracer = tracer.level().tasks().then(|| tracer.clone());
    let task_metrics = metrics.cloned();
    let (reduced, outcome) = exec.run_collect(
        config.effective_reduce_workers(),
        drains,
        move |idx, payload: <J::Container as Container<J::Key, J::Value, J::Combiner>>::Drain| {
            if let Some(t) = &task_tracer {
                t.emit(EventKind::DrainPartitionStart { partition: idx as u64 });
            }
            let drain_t0 = task_metrics.as_ref().map(|_| Instant::now());
            let part: Vec<(J::Key, AccOf<J>)> = <J::Container>::drain(payload);
            if let (Some(m), Some(t0)) = (&task_metrics, drain_t0) {
                m.drain_us.record_duration_us(t0.elapsed());
            }
            if let Some(t) = &task_tracer {
                t.emit(EventKind::DrainPartitionEnd { partition: idx as u64 });
                t.emit(EventKind::ReducePartitionStart { partition: idx as u64 });
            }
            let t0 = task_metrics.as_ref().map(|_| Instant::now());
            let out = match encode {
                Some(codec) => {
                    let mut frames = handoff::FrameBuf::default();
                    for (k, acc) in part {
                        let o = reduce_job.reduce(&k, acc);
                        frames.push(codec, &k, &o);
                    }
                    PartOut::from_frames(frames)
                }
                None => PartOut::from_pairs(
                    part.into_iter()
                        .map(|(k, acc)| {
                            let out = reduce_job.reduce(&k, acc);
                            (k, out)
                        })
                        .collect(),
                ),
            };
            if let (Some(m), Some(t0)) = (&task_metrics, t0) {
                m.reduce_partition_us.record_duration_us(t0.elapsed());
            }
            if let Some(t) = &task_tracer {
                t.emit(EventKind::ReducePartitionEnd { partition: idx as u64 });
            }
            out
        },
    );
    tracer.emit(EventKind::ReduceWaveEnd);
    stats.reduce_tasks = outcome.tasks;
    stats.add_wave(outcome);
    reduced
}

/// The out-of-core reduce wave: group in-memory drains and spilled runs
/// by partition, then per partition stream a p-way merge of the sorted
/// run files plus the sorted in-memory remainder straight through
/// `reduce` — one pass, no run read twice, run files deleted (by their
/// guards) the moment their partition completes. Combining containers
/// keep folding equal keys across runs; identity containers pass pairs
/// through unfolded.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by both runtimes
fn external_reduce<J: MapReduce>(
    job: &Arc<J>,
    container: J::Container,
    spill: &Arc<JobSpill<J::Key, AccOf<J>>>,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    stats: &mut JobStats,
    encode: Option<PairCodec<J::Key, J::Output>>,
) -> Result<Vec<PartOut<J::Key, J::Output>>> {
    type Grouped<J> = BTreeMap<
        usize,
        (
            Vec<
                <<J as MapReduce>::Container as Container<
                    <J as MapReduce>::Key,
                    <J as MapReduce>::Value,
                    <J as MapReduce>::Combiner,
                >>::Drain,
            >,
            Vec<SpilledRun>,
        ),
    >;
    let mut grouped: Grouped<J> = BTreeMap::new();
    for (partition, drain) in container.into_indexed_drains(config.reduce_workers) {
        grouped.entry(partition).or_default().0.push(drain);
    }
    for run in spill.take_runs() {
        grouped.entry(run.partition).or_default().1.push(run);
    }
    let tasks: Vec<_> = grouped.into_iter().map(|(p, (drains, runs))| (p, drains, runs)).collect();

    tracer.emit(EventKind::ReduceWaveStart { partitions: tasks.len() as u64 });
    let reduce_job = Arc::clone(job);
    let task_tracer = tracer.level().tasks().then(|| tracer.clone());
    let store = spill.store();
    let codec = spill.codec();
    let spill_metrics = spill.metrics();
    let merge_flow = config.flow.clone();
    let folds = <J::Container as Container<J::Key, J::Value, J::Combiner>>::spill_folds();
    let (reduced, outcome) = exec.run_collect(
        config.effective_reduce_workers(),
        tasks,
        move |_idx, (partition, drains, runs)| -> Result<PartOut<J::Key, J::Output>> {
            if let Some(t) = &task_tracer {
                t.emit(EventKind::ExternalMergeStart {
                    partition: partition as u64,
                    runs: runs.len() as u64,
                });
            }
            let t0 = Instant::now();
            let run_bytes: u64 = runs.iter().map(|r| r.bytes).sum();
            // Read/decode faults inside the merge stream park here (an
            // iterator can't return Result mid-merge).
            let parked: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
            let mut sources: Vec<MergeSource<J>> = Vec::with_capacity(drains.len() + runs.len());
            for payload in drains {
                let mut part = <J::Container>::drain(payload);
                part.sort_by(|a, b| a.0.cmp(&b.0));
                sources.push(Box::new(part.into_iter()));
            }
            for run in &runs {
                let decoded =
                    DecodedRun::open(store.as_ref(), &run.name, codec.decode, Arc::clone(&parked))
                        .map_err(|source| SupmrError::Ingest { chunk: None, source })?;
                sources.push(Box::new(decoded));
            }
            let merged: MergeSource<J> = if folds {
                Box::new(merge_fold(sources, |acc, other| {
                    <J::Combiner as crate::combiner::Combiner<J::Value>>::merge(acc, other);
                }))
            } else {
                Box::new(merge_by_key(sources))
            };
            let out = match encode {
                Some(codec) => {
                    let mut frames = handoff::FrameBuf::default();
                    for (k, acc) in merged {
                        let o = reduce_job.reduce(&k, acc);
                        frames.push(codec, &k, &o);
                    }
                    PartOut::from_frames(frames)
                }
                None => {
                    let mut pairs = Vec::new();
                    for (k, acc) in merged {
                        let o = reduce_job.reduce(&k, acc);
                        pairs.push((k, o));
                    }
                    PartOut::from_pairs(pairs)
                }
            };
            if let Some(detail) = parked.lock().take() {
                return Err(SupmrError::Merge { message: detail });
            }
            if let Some(m) = &spill_metrics {
                m.merge_us.record_duration_us(t0.elapsed());
            }
            if let Some(f) = &merge_flow {
                f.record_owned(FlowPhase::Merge, run_bytes, t0.elapsed());
            }
            if let Some(t) = &task_tracer {
                t.emit(EventKind::ExternalMergeEnd { partition: partition as u64 });
            }
            Ok(out)
        },
    );
    tracer.emit(EventKind::ReduceWaveEnd);
    stats.reduce_tasks = outcome.tasks;
    stats.add_wave(outcome);
    reduced.into_iter().collect()
}

/// Pair wrapper ordering on the key only, so outputs need not be `Ord`.
#[derive(Clone)]
struct ByKey<K, O>(K, O);

impl<K: Ord, O> PartialEq for ByKey<K, O> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<K: Ord, O> Eq for ByKey<K, O> {}
impl<K: Ord, O> PartialOrd for ByKey<K, O> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, O> Ord for ByKey<K, O> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// The merge phase: sort reduce partitions in parallel (a wave), then
/// combine them with the configured backend.
fn merge_phase<J: MapReduce>(
    reduced: Vec<Vec<(J::Key, J::Output)>>,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    metrics: Option<&Arc<JobMetrics>>,
    stats: &mut JobStats,
) -> Vec<(J::Key, J::Output)> {
    if matches!(config.merge, MergeMode::Unsorted) {
        return reduced.into_iter().flatten().collect();
    }
    // "each round (1) sorts many small lists in parallel and (2) merges
    // the lists" — step (1) is a full-width wave for both backends.
    let (runs, outcome) = exec.run_collect(config.effective_map_workers(), reduced, |_, part| {
        let mut run: Vec<ByKey<J::Key, J::Output>> =
            part.into_iter().map(|(k, o)| ByKey(k, o)).collect();
        run.sort();
        run
    });
    stats.add_wave(outcome);

    let merge_start = Instant::now();
    let merged: Vec<ByKey<J::Key, J::Output>> = match config.merge {
        MergeMode::Unsorted => unreachable!("handled above"),
        MergeMode::PairwiseRounds => {
            let (merged, pw) = pairwise_merge_rounds(runs, true);
            // The backend timed each round; replay them as spans laid
            // end to end from the merge start.
            let mut t = merge_start;
            for (round, (&width, &dur)) in pw.wave_widths.iter().zip(&pw.round_times).enumerate() {
                tracer.emit_at(
                    t,
                    EventKind::MergeRoundStart { round: round as u32, width: width as u32 },
                );
                t += dur;
                tracer.emit_at(t, EventKind::MergeRoundEnd { round: round as u32 });
            }
            if let Some(m) = metrics {
                for (&dur, &keys) in pw.round_times.iter().zip(&pw.round_keys) {
                    m.merge_round_us.record_duration_us(dur);
                    m.merge_keys.add(keys);
                }
                m.merge_rounds.add(u64::from(pw.rounds));
            }
            stats.merge_rounds = pw.rounds;
            stats.merge_elements_moved = pw.elements_moved;
            merged
        }
        MergeMode::PWay { ways } => {
            tracer
                .emit_at(merge_start, EventKind::MergeRoundStart { round: 0, width: ways as u32 });
            let (merged, kw) = parallel_kway_merge(runs, ways);
            tracer.emit(EventKind::MergeRoundEnd { round: 0 });
            stats.merge_rounds = u32::from(kw.partitions >= 1 && !merged.is_empty());
            stats.merge_elements_moved = kw.elements_moved;
            if let Some(m) = metrics {
                m.merge_round_us.record_duration_us(merge_start.elapsed());
                m.merge_rounds.add(u64::from(stats.merge_rounds));
                m.merge_keys.add(kw.elements_moved);
            }
            merged
        }
    };
    merged.into_iter().map(|ByKey(k, o)| (k, o)).collect()
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are clearer mutated stepwise
mod tests {
    use super::*;
    use supmr_storage::{MemFileSet, MemSource};

    #[test]
    fn input_wrappers_report_sizes() {
        let s = Input::stream(MemSource::from(vec![0u8; 123]));
        assert_eq!(s.total_bytes(), 123);
        assert!(s.describe().contains("123"));
        let f = Input::files(MemFileSet::new(vec![vec![1; 10], vec![2; 5]]));
        assert_eq!(f.total_bytes(), 15);
    }

    #[test]
    fn ingest_entire_preserves_file_segments() {
        let chunk =
            ingest_entire(Input::files(MemFileSet::new(vec![b"aaa".to_vec(), b"bb".to_vec()])))
                .unwrap();
        assert_eq!(chunk.data, b"aaabb".to_vec());
        assert_eq!(chunk.segments, vec![0..3, 3..5]);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let ok = JobConfig::default();
        assert!(ok.validate().is_ok());
        let mut c = JobConfig::default();
        c.map_workers = 0;
        assert!(c.validate().is_err());
        let mut c = JobConfig::default();
        c.split_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = JobConfig::default();
        c.chunking = Chunking::Inter { chunk_bytes: 0 };
        assert!(c.validate().is_err());
        let mut c = JobConfig::default();
        c.chunking = Chunking::Intra { files_per_chunk: 0 };
        assert!(c.validate().is_err());
        let mut c = JobConfig::default();
        c.merge = MergeMode::PWay { ways: 0 };
        assert!(c.validate().is_err());
        let mut c = JobConfig::default();
        c.record_format = RecordFormat::FixedWidth(0);
        assert!(c.validate().is_err());
    }
}
