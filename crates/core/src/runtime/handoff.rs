//! Typed inter-stage hand-off: how one pipeline stage's reduced output
//! becomes the next stage's [`Input`](super::Input) without ever
//! materializing through `Vec<(K, V)>`.
//!
//! A non-terminal stage encodes each reduced pair straight out of its
//! reduce workers into per-partition byte buffers, using the same
//! [`PairCodec`] contract (and the same `len | crc32 | payload` framing)
//! the spill pipeline writes run files with — one codec teaches the
//! runtime both how to spill a stage *and* how to feed its successor.
//! The buffers are sealed into one [`SharedBytes`] allocation whose
//! per-partition segment ranges become the ingest-chunk segments of the
//! downstream stage, so the downstream map wave splits along partition
//! boundaries and walks the frames zero-copy with a [`FrameIter`].
//!
//! [`HandoffStats::materialized_pairs`] is the accounting behind the
//! design's central claim: it counts pairs that crossed the stage
//! boundary through an intermediate `Vec<(K, V)>` (only the sorted-merge
//! hand-off path does this) and stays `0` on the streamed path.

use crate::chunk::IngestChunk;
use crate::spill::PairCodec;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;
use supmr_merge::crc32;
use supmr_metrics::{FlowLedger, FlowPhase};
use supmr_storage::SharedBytes;

/// Byte overhead of one frame: `u32` length + `u32` CRC32, both LE.
const FRAME_HEADER: usize = 8;

/// Counters describing one inter-stage hand-off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandoffStats {
    /// Pairs encoded into the hand-off buffer.
    pub pairs: u64,
    /// Total framed bytes (headers included).
    pub bytes: u64,
    /// Non-empty partition segments in the buffer.
    pub segments: u64,
    /// Pairs that crossed the stage boundary through an intermediate
    /// `Vec<(K, V)>`. `0` on the streamed (unsorted) hand-off path —
    /// the zero-copy guarantee, asserted by tests; equal to
    /// [`pairs`](HandoffStats::pairs) when the stage's merge mode
    /// forced a sorted materialization first.
    pub materialized_pairs: u64,
}

/// The reduced output of a non-terminal stage: one shared allocation of
/// codec-framed pairs, segmented by upstream reduce partition.
#[derive(Debug, Clone)]
pub struct StageData {
    pub(crate) data: SharedBytes,
    pub(crate) segments: Vec<Range<usize>>,
    pub(crate) stats: HandoffStats,
}

impl StageData {
    /// The hand-off counters.
    pub fn stats(&self) -> HandoffStats {
        self.stats
    }

    /// Walk the framed pairs with `codec` (all segments, in order).
    pub fn iter<K, A>(&self, codec: PairCodec<K, A>) -> FrameIter<'_, K, A> {
        FrameIter::new(&self.data, codec)
    }

    /// Longest partition segment in bytes — the downstream stage's
    /// split size, so each partition maps as exactly one task.
    pub(crate) fn max_segment_len(&self) -> usize {
        self.segments.iter().map(Range::len).max().unwrap_or(0)
    }

    /// Seal into a resident ingest chunk for the downstream stage. The
    /// buffer is shared, not copied; segment boundaries become the
    /// chunk's file-style segments so splits never straddle partitions.
    pub(crate) fn into_chunk(self) -> IngestChunk {
        IngestChunk { index: 0, offset: 0, segments: self.segments, data: self.data }
    }
}

/// Accumulates one reduce partition's framed pairs; the encode-side of
/// the hand-off, called from reduce workers.
#[derive(Debug, Default)]
pub(crate) struct FrameBuf {
    out: Vec<u8>,
    scratch: Vec<u8>,
    pairs: u64,
}

impl FrameBuf {
    /// Append one framed pair.
    pub(crate) fn push<K, A>(&mut self, codec: PairCodec<K, A>, key: &K, acc: &A) {
        self.scratch.clear();
        (codec.encode)(key, acc, &mut self.scratch);
        self.out.reserve(FRAME_HEADER + self.scratch.len());
        self.out.extend_from_slice(&(self.scratch.len() as u32).to_le_bytes());
        self.out.extend_from_slice(&crc32(&self.scratch).to_le_bytes());
        self.out.extend_from_slice(&self.scratch);
        self.pairs += 1;
    }

    pub(crate) fn pairs(&self) -> u64 {
        self.pairs
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        &self.out
    }
}

/// Assemble per-partition frame buffers into one [`StageData`]:
/// a single allocation with one segment per non-empty partition.
/// `materialized` marks pairs that passed through a `Vec<(K, V)>` on
/// the way here (the sorted hand-off path).
pub(crate) fn assemble(parts: Vec<FrameBuf>, materialized: bool) -> StageData {
    let total: usize = parts.iter().map(|p| p.out.len()).sum();
    let mut data = Vec::with_capacity(total);
    let mut segments = Vec::new();
    let mut pairs = 0u64;
    for part in &parts {
        if part.is_empty() {
            continue;
        }
        let start = data.len();
        data.extend_from_slice(part.bytes());
        segments.push(start..data.len());
        pairs += part.pairs();
    }
    let stats = HandoffStats {
        pairs,
        bytes: data.len() as u64,
        segments: segments.len() as u64,
        materialized_pairs: if materialized { pairs } else { 0 },
    };
    StageData { data: SharedBytes::from(data), segments, stats }
}

/// Decodes codec-framed pairs from a hand-off byte range — the map-side
/// walker a downstream stage uses on its (partition-aligned) splits.
///
/// Hand-off buffers never leave the process, so a framing or checksum
/// mismatch is a runtime bug, not an input fault: the iterator panics
/// (which the runtime surfaces as a
/// [`TaskPanic`](crate::error::SupmrError::TaskPanic)) rather than
/// silently truncating the stream.
pub struct FrameIter<'a, K, A> {
    bytes: &'a [u8],
    decode: fn(&[u8]) -> Option<(K, A)>,
    /// Flow attribution: (ledger, bytes walked so far, walk start).
    /// Settled once, on drop, so per-frame stepping stays branch-cheap.
    flow: Option<(Arc<FlowLedger>, u64, Instant)>,
}

impl<'a, K, A> FrameIter<'a, K, A> {
    /// Walk `bytes` (a whole hand-off split) with `codec`.
    pub fn new(bytes: &'a [u8], codec: PairCodec<K, A>) -> FrameIter<'a, K, A> {
        FrameIter { bytes, decode: codec.decode, flow: None }
    }

    /// Attribute the bytes this iterator walks to the shuffle phase of
    /// `ledger`, recorded once when the iterator drops. Stands down
    /// (like every `record_owned` caller) if a storage-level meter has
    /// claimed the phase.
    pub fn with_flow(mut self, ledger: Arc<FlowLedger>) -> FrameIter<'a, K, A> {
        self.flow = Some((ledger, 0, Instant::now()));
        self
    }
}

impl<K, A> Drop for FrameIter<'_, K, A> {
    fn drop(&mut self) {
        if let Some((ledger, walked, started)) = self.flow.take() {
            ledger.record_owned(FlowPhase::Shuffle, walked, started.elapsed());
        }
    }
}

impl<K, A> Iterator for FrameIter<'_, K, A> {
    type Item = (K, A);

    fn next(&mut self) -> Option<(K, A)> {
        if self.bytes.is_empty() {
            return None;
        }
        assert!(self.bytes.len() >= FRAME_HEADER, "truncated hand-off frame header");
        let len = u32::from_le_bytes(self.bytes[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(self.bytes[4..8].try_into().unwrap());
        let end = FRAME_HEADER + len;
        assert!(self.bytes.len() >= end, "truncated hand-off frame payload");
        let payload = &self.bytes[FRAME_HEADER..end];
        assert_eq!(crc32(payload), crc, "hand-off frame checksum mismatch");
        let pair = (self.decode)(payload).expect("undecodable hand-off frame");
        self.bytes = &self.bytes[end..];
        if let Some((_, walked, _)) = &mut self.flow {
            *walked += end as u64;
        }
        Some(pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> PairCodec<u64, u64> {
        PairCodec {
            encode: |k, a, buf| {
                buf.extend_from_slice(&k.to_le_bytes());
                buf.extend_from_slice(&a.to_le_bytes());
            },
            decode: |rec| {
                if rec.len() != 16 {
                    return None;
                }
                Some((
                    u64::from_le_bytes(rec[..8].try_into().unwrap()),
                    u64::from_le_bytes(rec[8..].try_into().unwrap()),
                ))
            },
            size_hint: |_, _| 16,
        }
    }

    #[test]
    fn frames_round_trip_per_partition() {
        let c = codec();
        let mut p0 = FrameBuf::default();
        p0.push(c, &1, &10);
        p0.push(c, &2, &20);
        let p1 = FrameBuf::default(); // empty partition drops out
        let mut p2 = FrameBuf::default();
        p2.push(c, &3, &30);
        let data = assemble(vec![p0, p1, p2], false);
        assert_eq!(data.stats().pairs, 3);
        assert_eq!(data.stats().segments, 2);
        assert_eq!(data.stats().materialized_pairs, 0);
        assert_eq!(data.stats().bytes, 3 * (16 + 8));
        let decoded: Vec<(u64, u64)> = data.iter(c).collect();
        assert_eq!(decoded, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn chunk_segments_follow_partitions() {
        let c = codec();
        let mut p0 = FrameBuf::default();
        p0.push(c, &1, &10);
        let mut p1 = FrameBuf::default();
        p1.push(c, &2, &20);
        p1.push(c, &3, &30);
        let data = assemble(vec![p0, p1], true);
        assert_eq!(data.stats().materialized_pairs, 3, "sorted path counts every pair");
        assert_eq!(data.max_segment_len(), 48);
        let chunk = data.into_chunk();
        assert_eq!(chunk.segments, vec![0..24, 24..72]);
    }

    #[test]
    fn frame_iter_attributes_walked_bytes_to_shuffle() {
        let c = codec();
        let mut p = FrameBuf::default();
        p.push(c, &1, &10);
        p.push(c, &2, &20);
        let ledger = Arc::new(FlowLedger::new());
        let decoded: Vec<(u64, u64)> =
            FrameIter::new(p.bytes(), c).with_flow(Arc::clone(&ledger)).collect();
        assert_eq!(decoded.len(), 2);
        assert_eq!(ledger.bytes(FlowPhase::Shuffle), 2 * (16 + 8), "frames counted with headers");
        // An externally-owned phase silences the iterator's recording.
        let owned = Arc::new(FlowLedger::new());
        owned.mark_external(FlowPhase::Shuffle);
        let _: Vec<(u64, u64)> =
            FrameIter::new(p.bytes(), c).with_flow(Arc::clone(&owned)).collect();
        assert_eq!(owned.bytes(FlowPhase::Shuffle), 0);
    }

    #[test]
    #[should_panic(expected = "checksum mismatch")]
    fn corruption_panics_instead_of_truncating() {
        let c = codec();
        let mut p = FrameBuf::default();
        p.push(c, &1, &10);
        let mut bytes = p.bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let _: Vec<(u64, u64)> = FrameIter::new(&bytes, c).collect();
    }
}
