//! The SupMR runtime: the ingest chunk pipeline.
//!
//! Implements the paper's pseudo-code (§III-B) directly:
//!
//! ```text
//! partition input into ingest chunks
//! ingest 1st chunk
//! for each ingest chunk do
//!     create thread to ingest next chunk
//!     run mappers on previous chunk
//!     destroy thread
//! end
//! run mappers on last chunk
//! ```
//!
//! A job over n chunks executes n+1 rounds: round 0 ingests chunk 0
//! serially (nothing else to overlap with); each subsequent round runs a
//! full map wave on chunk *i* while a dedicated ingest thread reads chunk
//! *i+1* (double-buffering). The intermediate container is created once
//! and **persists across every map round** (§III-C) — each wave's local
//! emitters absorb into the same shared container.
//!
//! The pipeline is also where the job's **stall accounting** is
//! measured: each round ends with either the mappers waiting for the
//! next chunk's ingest ([`EventKind::MapWaitingForChunk`], the pipeline
//! is ingest-bound) or the finished ingest waiting for the mappers to
//! release it ([`EventKind::IngestWaitingForContainer`], map-bound).
//! Exactly one side idles per round; both totals accumulate into
//! [`JobStats`] regardless of the trace level, so the Fig. 2 overlap is
//! always quantified, not inferred.
//!
//! Two extensions beyond the paper's prototype live here as well:
//!
//! * **Round feedback** — each round's measured ingest/map durations are
//!   handed back to the chunker, which is how
//!   [`Chunking::Adaptive`] retunes its chunk size online (the paper's
//!   future-work feedback loop).
//! * **Deeper prefetch** — `JobConfig::prefetch_depth > 1` replaces the
//!   per-round create/destroy ingest thread with one long-lived ingest
//!   thread pushing into a bounded buffer of that depth (N-buffering
//!   instead of double-buffering), an ablatable design variant. There
//!   the stalls are measured at the buffer boundary: map-side time
//!   blocked in `recv` and ingest-side time blocked in `send`.

use super::governor::{self, ActiveConfig, AdaptiveGauges};
use super::{
    finish_job, map_wave, Input, JobConfig, JobMetrics, JobStats, StageResult, StageWiring,
};
use crate::api::MapReduce;
use crate::chunk::{
    AdaptiveChunker, AdaptiveTuning, Chunker, Chunking, HybridChunker, IngestChunk,
    InterFileChunker, IntraFileChunker, RoundFeedback,
};
use crate::container::Container;
use crate::error::{Result, SupmrError};
use crate::pool::Executor;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};
use supmr_metrics::{EventKind, FlowPhase, Phase, PhaseTimer, Tracer};

/// Build the chunker matching the configured strategy, rejecting
/// mismatched input shapes: inter-file and adaptive chunking need a
/// stream, intra-file and hybrid chunking need a file set.
fn make_chunker(input: Input, config: &JobConfig) -> Result<Box<dyn Chunker>> {
    let mismatch = |msg: &str| Err(SupmrError::invalid_config(msg));
    match (config.chunking, input) {
        (Chunking::Inter { chunk_bytes }, Input::Stream(s)) => {
            Ok(Box::new(InterFileChunker::new(s, chunk_bytes, config.record_format)))
        }
        (Chunking::Adaptive(adaptive), Input::Stream(s)) => {
            Ok(Box::new(AdaptiveChunker::new(s, config.record_format, adaptive)))
        }
        (Chunking::Intra { files_per_chunk }, Input::Files(f)) => {
            Ok(Box::new(IntraFileChunker::new(f, files_per_chunk)))
        }
        (Chunking::Hybrid { chunk_bytes }, Input::Files(f)) => {
            Ok(Box::new(HybridChunker::new(f, chunk_bytes, config.record_format)))
        }
        (Chunking::Inter { .. } | Chunking::Adaptive(_), Input::Files(_)) => {
            mismatch("inter-file/adaptive chunking requires a stream input; got a file set")
        }
        (Chunking::Intra { .. } | Chunking::Hybrid { .. }, Input::Stream(_)) => {
            mismatch("intra-file/hybrid chunking requires a file-set input; got a stream")
        }
        (_, Input::Resident(_)) => {
            mismatch("chunked ingest requires an external input; resident hand-off bytes pair with Chunking::None")
        }
        (Chunking::None, _) => mismatch("pipeline runtime requires a chunking strategy"),
    }
}

/// Execute `job` on the ingest chunk pipeline (`run_ingestMR()` in the
/// paper's API).
pub(crate) fn run<J: MapReduce>(
    job: &Arc<J>,
    input: Input,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    wiring: StageWiring<J>,
) -> Result<StageResult<J::Key, J::Output>> {
    let chunker = make_chunker(input, config)?;
    if config.prefetch_depth > 1 {
        run_buffered(job, chunker, config, exec, tracer, wiring)
    } else {
        run_double_buffered(job, chunker, config, exec, tracer, wiring)
    }
}

/// Surface a self-tuning chunker's state after a feedback round: mirror
/// the fitted model into the `supmr.adaptive.*` gauges every round, and
/// when the chosen size actually moved, record it as a `chunk-feedback`
/// governor action (trace event, plus the report log when the job runs
/// under a governor).
fn surface_tuning(
    tuning: Option<AdaptiveTuning>,
    last_chunk_bytes: &mut u64,
    gauges: Option<&AdaptiveGauges>,
    active: Option<&Arc<ActiveConfig>>,
    tracer: &Tracer,
) {
    let Some(tuning) = tuning else { return };
    if let Some(g) = gauges {
        g.mirror(&tuning);
    }
    if tuning.chunk_bytes != *last_chunk_bytes {
        *last_chunk_bytes = tuning.chunk_bytes;
        tracer.emit(EventKind::GovernorAction {
            verdict: "chunk-feedback",
            knob: "chunk_bytes",
            value: tuning.chunk_bytes,
        });
        if let Some(a) = active {
            a.record("chunk-feedback", "chunk_bytes", tuning.chunk_bytes);
        }
    }
}

/// The `supmr.adaptive.*` gauge handles, registered only for adaptive
/// chunking runs with a live registry.
fn adaptive_gauges(config: &JobConfig) -> Option<AdaptiveGauges> {
    matches!(config.chunking, Chunking::Adaptive(_))
        .then(|| config.metrics.as_ref().map(AdaptiveGauges::register))
        .flatten()
}

/// What one overlapped ingest reports back to the round loop.
struct IngestProbe {
    next: io::Result<Option<IngestChunk>>,
    /// Time the read itself took.
    took: Duration,
    /// When the read finished (the ingest side idles from here until
    /// the map wave releases the container).
    done: Instant,
}

/// The paper's pipeline: one ingest thread per round (double buffering).
fn run_double_buffered<J: MapReduce>(
    job: &Arc<J>,
    mut chunker: Box<dyn Chunker>,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    wiring: StageWiring<J>,
) -> Result<StageResult<J::Key, J::Output>> {
    let mut timer = PhaseTimer::start_job();
    timer.mark_fused();
    let mut stats = JobStats::default();
    let metrics = config.metrics.as_ref().map(|r| JobMetrics::register(r, "pipeline"));
    // Created once, persists across all map rounds.
    let container = Arc::new(job.make_container());
    container.configure(&super::container_hooks(config));
    let spill = super::setup_spill(job, &container, config, tracer, &wiring)?;
    let gauges = adaptive_gauges(config);
    let mut last_tuned_bytes = 0u64;

    // Round 0: ingest the first chunk serially.
    timer.begin(Phase::Ingest);
    let ingest0 = Instant::now();
    let mut current = chunker.next_chunk().map_err(|e| SupmrError::ingest(0, e))?;
    if let Some(chunk) = &current {
        tracer.emit_at(ingest0, EventKind::ChunkIngestStart { chunk: 0 });
        tracer.emit(EventKind::ChunkIngestEnd { chunk: 0, bytes: chunk.len() as u64 });
        if let Some(m) = &metrics {
            m.record_ingest(chunk.len() as u64, ingest0.elapsed());
        }
        if let Some(f) = &config.flow {
            f.record_owned(FlowPhase::Ingest, chunk.len() as u64, ingest0.elapsed());
        }
    }
    timer.end(Phase::Ingest);

    let mut round: u32 = 0;
    while let Some(chunk) = current.take() {
        config.check_cancelled()?;
        stats.ingest_chunks += 1;
        stats.bytes_ingested += chunk.len() as u64;
        stats.map_rounds += 1;
        let next_index = round + 1;

        timer.begin(Phase::Ingest);
        timer.begin(Phase::Map);
        // "create thread to ingest next chunk / run mappers on previous
        // chunk / destroy thread" — the scope is the create/destroy.
        let ingest_tracer = tracer.clone();
        let ingest_metrics = metrics.clone();
        let ingest_flow = config.flow.clone();
        let chunker_ref = &mut chunker;
        let (probe, map_time, map_done) = std::thread::scope(|scope| {
            let ingest = std::thread::Builder::new()
                .name("supmr-ingest".to_string())
                .spawn_scoped(scope, move || {
                    let t0 = Instant::now();
                    let next = chunker_ref.next_chunk();
                    let took = t0.elapsed();
                    if let Ok(Some(c)) = &next {
                        ingest_tracer
                            .emit_at(t0, EventKind::ChunkIngestStart { chunk: next_index });
                        ingest_tracer.emit(EventKind::ChunkIngestEnd {
                            chunk: next_index,
                            bytes: c.len() as u64,
                        });
                        if let Some(m) = &ingest_metrics {
                            m.record_ingest(c.len() as u64, took);
                        }
                        if let Some(f) = &ingest_flow {
                            f.record_owned(FlowPhase::Ingest, c.len() as u64, took);
                        }
                    }
                    IngestProbe { next, took, done: Instant::now() }
                })
                .expect("spawning the round's ingest thread");
            let t0 = Instant::now();
            let outcome =
                map_wave(job, &container, &chunk, config, exec, tracer, metrics.as_ref(), round);
            let map_time = t0.elapsed();
            let map_done = Instant::now();
            stats.map_tasks += outcome.tasks;
            stats.add_wave(outcome);
            (ingest.join().expect("ingest thread panicked"), map_time, map_done)
        });
        stats.threads_spawned += 1; // the ingest thread
        timer.end(Phase::Map);
        timer.end(Phase::Ingest);

        let next = probe.next.map_err(|e| SupmrError::ingest(next_index, e))?;
        // Exactly one side of the pipeline idled this round: mappers
        // from their wave end until the ingest came back, or the ingest
        // from its read end until the wave released the container.
        if next.is_some() {
            let map_wait = probe.done.saturating_duration_since(map_done);
            let ingest_wait = map_done.saturating_duration_since(probe.done);
            stats.map_waiting += map_wait;
            stats.ingest_waiting += ingest_wait;
            if let Some(m) = &metrics {
                m.record_stalls(map_wait, ingest_wait);
            }
            if !map_wait.is_zero() {
                tracer.emit(EventKind::MapWaitingForChunk {
                    round,
                    wait_us: map_wait.as_micros() as u64,
                });
            }
            if !ingest_wait.is_zero() {
                tracer.emit(EventKind::IngestWaitingForContainer {
                    chunk: next_index,
                    wait_us: ingest_wait.as_micros() as u64,
                });
            }
        }

        let feedback =
            RoundFeedback { chunk_bytes: chunk.len() as u64, ingest: probe.took, map: map_time };
        chunker.feedback(feedback);
        surface_tuning(
            chunker.tuning(),
            &mut last_tuned_bytes,
            gauges.as_ref(),
            config.active.as_ref(),
            tracer,
        );
        stats.rounds.push(super::RoundRecord {
            chunk_bytes: feedback.chunk_bytes,
            ingest: feedback.ingest,
            map: feedback.map,
        });
        current = next;
        round += 1;
    }

    finish_job(job, container, config, exec, tracer, metrics.as_ref(), spill, timer, stats, wiring)
}

/// Admission gate for the N-buffered producer when a governor may
/// deepen the prefetch depth mid-job: the channel is sized to the cap
/// and this gate enforces the *current* dynamic depth. Waits poll on a
/// short timeout so a governor widening the depth takes effect without
/// a wakeup; the consumer closes the gate on exit (unwinds included, via
/// [`GateGuard`]) so the producer can never wait on a dead pipeline.
struct PrefetchGate {
    state: std::sync::Mutex<GateState>,
    cvar: std::sync::Condvar,
}

#[derive(Default)]
struct GateState {
    in_flight: usize,
    closed: bool,
}

impl PrefetchGate {
    fn new() -> PrefetchGate {
        PrefetchGate {
            state: std::sync::Mutex::new(GateState::default()),
            cvar: std::sync::Condvar::new(),
        }
    }

    /// Block until a buffer slot is admissible under the current
    /// dynamic depth, then claim it. Returns immediately once closed.
    fn admit(&self, active: &ActiveConfig) {
        let mut st = self.state.lock().expect("prefetch gate poisoned");
        while !st.closed && st.in_flight >= active.prefetch_depth() {
            let (guard, _timeout) = self
                .cvar
                .wait_timeout(st, Duration::from_millis(5))
                .expect("prefetch gate poisoned");
            st = guard;
        }
        st.in_flight += 1;
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("prefetch gate poisoned");
        st.in_flight = st.in_flight.saturating_sub(1);
        self.cvar.notify_all();
    }

    fn close(&self) {
        self.state.lock().expect("prefetch gate poisoned").closed = true;
        self.cvar.notify_all();
    }
}

/// Closes the consumer's side of a [`PrefetchGate`] when dropped.
struct GateGuard<'a>(&'a PrefetchGate);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// N-buffered variant: a single long-lived ingest thread streams chunks
/// through a bounded channel of `prefetch_depth` chunks while the main
/// thread runs map waves. Round feedback is not delivered here — the
/// chunker lives on the ingest thread — so adaptive chunking pairs with
/// `prefetch_depth == 1` (enforced by config validation). Under a
/// governor the channel is widened to [`governor::PREFETCH_CAP`] and a
/// [`PrefetchGate`] enforces the dynamic depth instead.
fn run_buffered<J: MapReduce>(
    job: &Arc<J>,
    mut chunker: Box<dyn Chunker>,
    config: &JobConfig,
    exec: Executor<'_>,
    tracer: &Tracer,
    wiring: StageWiring<J>,
) -> Result<StageResult<J::Key, J::Output>> {
    let mut timer = PhaseTimer::start_job();
    timer.mark_fused();
    let mut stats = JobStats::default();
    let metrics = config.metrics.as_ref().map(|r| JobMetrics::register(r, "pipeline"));
    let container = Arc::new(job.make_container());
    container.configure(&super::container_hooks(config));
    let spill = super::setup_spill(job, &container, config, tracer, &wiring)?;

    timer.begin(Phase::Ingest);
    timer.begin(Phase::Map);
    let mut map_waiting = Duration::ZERO;
    let gate = config.active.as_ref().map(|a| (Arc::new(PrefetchGate::new()), Arc::clone(a)));
    let capacity = match &gate {
        Some(_) => config.prefetch_depth.max(governor::PREFETCH_CAP),
        None => config.prefetch_depth,
    };
    let ingest_result: Result<Duration> = std::thread::scope(|scope| {
        let (tx, rx) = crossbeam_channel::bounded::<IngestChunk>(capacity);
        let producer_gate = gate.clone();
        let producer_tracer = tracer.clone();
        let producer_metrics = metrics.clone();
        let producer_flow = config.flow.clone();
        let producer = std::thread::Builder::new()
            .name("supmr-ingest".to_string())
            .spawn_scoped(scope, move || -> (Result<()>, Duration) {
                let mut index: u32 = 0;
                let mut waited = Duration::ZERO;
                loop {
                    let t0 = Instant::now();
                    match chunker.next_chunk() {
                        Ok(Some(chunk)) => {
                            producer_tracer
                                .emit_at(t0, EventKind::ChunkIngestStart { chunk: index });
                            producer_tracer.emit(EventKind::ChunkIngestEnd {
                                chunk: index,
                                bytes: chunk.len() as u64,
                            });
                            if let Some(m) = &producer_metrics {
                                m.record_ingest(chunk.len() as u64, t0.elapsed());
                            }
                            if let Some(f) = &producer_flow {
                                f.record_owned(FlowPhase::Ingest, chunk.len() as u64, t0.elapsed());
                            }
                            let s0 = Instant::now();
                            if let Some((gate, active)) = &producer_gate {
                                gate.admit(active);
                            }
                            if tx.send(chunk).is_err() {
                                break (Ok(()), waited); // consumer went away
                            }
                            // Time blocked handing over = buffer full =
                            // the ingest side waiting on the mappers.
                            let wait = s0.elapsed();
                            waited += wait;
                            if !wait.is_zero() {
                                producer_tracer.emit(EventKind::IngestWaitingForContainer {
                                    chunk: index,
                                    wait_us: wait.as_micros() as u64,
                                });
                                if let Some(m) = &producer_metrics {
                                    m.record_stalls(Duration::ZERO, wait);
                                }
                            }
                            index += 1;
                        }
                        Ok(None) => break (Ok(()), waited),
                        Err(e) => break (Err(SupmrError::ingest(index, e)), waited),
                    }
                }
            })
            .expect("spawning the pipeline ingest thread");
        let gate_guard = gate.as_ref().map(|(g, _)| GateGuard(g));
        let mut round: u32 = 0;
        let mut cancelled = false;
        loop {
            if config.check_cancelled().is_err() {
                cancelled = true;
                break;
            }
            let r0 = Instant::now();
            let Ok(chunk) = rx.recv() else { break };
            if let Some((g, _)) = &gate {
                g.release();
            }
            // Time blocked in recv = the mappers waiting on ingest. The
            // first recv is the pipeline filling (the serial first
            // ingest), not a stall.
            let wait = r0.elapsed();
            if round > 0 && !wait.is_zero() {
                map_waiting += wait;
                tracer.emit(EventKind::MapWaitingForChunk {
                    round: round - 1,
                    wait_us: wait.as_micros() as u64,
                });
                if let Some(m) = &metrics {
                    m.record_stalls(wait, Duration::ZERO);
                }
            }
            stats.ingest_chunks += 1;
            stats.bytes_ingested += chunk.len() as u64;
            stats.map_rounds += 1;
            let outcome =
                map_wave(job, &container, &chunk, config, exec, tracer, metrics.as_ref(), round);
            stats.map_tasks += outcome.tasks;
            stats.add_wave(outcome);
            round += 1;
        }
        // On cancellation the producer may be blocked in `send` (full
        // channel) or in the prefetch gate; dropping the receiver and
        // the gate guard unblocks it so the join below cannot hang.
        drop(rx);
        drop(gate_guard);
        let (result, ingest_waited) = producer.join().expect("ingest thread panicked");
        if cancelled {
            return Err(SupmrError::Cancelled);
        }
        result.map(|()| ingest_waited)
    });
    stats.ingest_waiting += ingest_result?;
    stats.map_waiting += map_waiting;
    stats.threads_spawned += 1; // the long-lived ingest thread
    timer.end(Phase::Map);
    timer.end(Phase::Ingest);

    finish_job(job, container, config, exec, tracer, metrics.as_ref(), spill, timer, stats, wiring)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are clearer mutated stepwise
mod tests {
    use super::*;
    use crate::chunk::{AdaptiveConfig, Chunking};
    use supmr_storage::{MemFileSet, MemSource};

    #[test]
    fn chunker_construction_validates_shape() {
        let mut config = JobConfig::default();
        config.chunking = Chunking::Inter { chunk_bytes: 64 };
        assert!(make_chunker(Input::stream(MemSource::from(vec![0u8; 10])), &config).is_ok());
        assert!(make_chunker(Input::files(MemFileSet::new(vec![])), &config).is_err());

        config.chunking = Chunking::Intra { files_per_chunk: 2 };
        assert!(make_chunker(Input::files(MemFileSet::new(vec![])), &config).is_ok());
        assert!(make_chunker(Input::stream(MemSource::from(vec![])), &config).is_err());

        config.chunking = Chunking::Hybrid { chunk_bytes: 100 };
        assert!(make_chunker(Input::files(MemFileSet::new(vec![])), &config).is_ok());
        assert!(make_chunker(Input::stream(MemSource::from(vec![])), &config).is_err());

        config.chunking = Chunking::Adaptive(AdaptiveConfig::default());
        assert!(make_chunker(Input::stream(MemSource::from(vec![])), &config).is_ok());
        assert!(make_chunker(Input::files(MemFileSet::new(vec![])), &config).is_err());

        config.chunking = Chunking::None;
        assert!(make_chunker(Input::stream(MemSource::from(vec![])), &config).is_err());
    }

    #[test]
    fn shape_mismatch_is_an_invalid_config_error() {
        let mut config = JobConfig::default();
        config.chunking = Chunking::Inter { chunk_bytes: 64 };
        let err = match make_chunker(Input::files(MemFileSet::new(vec![])), &config) {
            Err(err) => err,
            Ok(_) => panic!("shape mismatch accepted"),
        };
        assert!(matches!(err, SupmrError::InvalidConfig { .. }));
        assert_eq!(err.io_kind(), None);
    }
}
