//! The SupMR runtime: the ingest chunk pipeline.
//!
//! Implements the paper's pseudo-code (§III-B) directly:
//!
//! ```text
//! partition input into ingest chunks
//! ingest 1st chunk
//! for each ingest chunk do
//!     create thread to ingest next chunk
//!     run mappers on previous chunk
//!     destroy thread
//! end
//! run mappers on last chunk
//! ```
//!
//! A job over n chunks executes n+1 rounds: round 0 ingests chunk 0
//! serially (nothing else to overlap with); each subsequent round runs a
//! full map wave on chunk *i* while a dedicated ingest thread reads chunk
//! *i+1* (double-buffering). The intermediate container is created once
//! and **persists across every map round** (§III-C) — each wave's local
//! emitters absorb into the same shared container.
//!
//! Two extensions beyond the paper's prototype live here as well:
//!
//! * **Round feedback** — each round's measured ingest/map durations are
//!   handed back to the chunker, which is how
//!   [`Chunking::Adaptive`] retunes its chunk size online (the paper's
//!   future-work feedback loop).
//! * **Deeper prefetch** — `JobConfig::prefetch_depth > 1` replaces the
//!   per-round create/destroy ingest thread with one long-lived ingest
//!   thread pushing into a bounded buffer of that depth (N-buffering
//!   instead of double-buffering), an ablatable design variant.

use super::{finish_job, map_wave, Input, JobConfig, JobResult, JobStats};
use crate::api::MapReduce;
use crate::chunk::{
    AdaptiveChunker, Chunker, Chunking, HybridChunker, InterFileChunker, IntraFileChunker,
    RoundFeedback,
};
use crate::pool::Executor;
use std::io;
use std::sync::Arc;
use std::time::Instant;
use supmr_metrics::{Phase, PhaseTimer};

/// Build the chunker matching the configured strategy, rejecting
/// mismatched input shapes: inter-file and adaptive chunking need a
/// stream, intra-file and hybrid chunking need a file set.
fn make_chunker(input: Input, config: &JobConfig) -> io::Result<Box<dyn Chunker>> {
    let mismatch = |msg: &str| Err(io::Error::new(io::ErrorKind::InvalidInput, msg.to_string()));
    match (config.chunking, input) {
        (Chunking::Inter { chunk_bytes }, Input::Stream(s)) => {
            Ok(Box::new(InterFileChunker::new(s, chunk_bytes, config.record_format)))
        }
        (Chunking::Adaptive(adaptive), Input::Stream(s)) => {
            Ok(Box::new(AdaptiveChunker::new(s, config.record_format, adaptive)))
        }
        (Chunking::Intra { files_per_chunk }, Input::Files(f)) => {
            Ok(Box::new(IntraFileChunker::new(f, files_per_chunk)))
        }
        (Chunking::Hybrid { chunk_bytes }, Input::Files(f)) => {
            Ok(Box::new(HybridChunker::new(f, chunk_bytes, config.record_format)))
        }
        (Chunking::Inter { .. } | Chunking::Adaptive(_), Input::Files(_)) => {
            mismatch("inter-file/adaptive chunking requires a stream input; got a file set")
        }
        (Chunking::Intra { .. } | Chunking::Hybrid { .. }, Input::Stream(_)) => {
            mismatch("intra-file/hybrid chunking requires a file-set input; got a stream")
        }
        (Chunking::None, _) => mismatch("pipeline runtime requires a chunking strategy"),
    }
}

/// Execute `job` on the ingest chunk pipeline (`run_ingestMR()` in the
/// paper's API).
pub fn run<J: MapReduce>(
    job: &Arc<J>,
    input: Input,
    config: &JobConfig,
    exec: Executor<'_>,
) -> io::Result<JobResult<J::Key, J::Output>> {
    let chunker = make_chunker(input, config)?;
    if config.prefetch_depth > 1 {
        run_buffered(job, chunker, config, exec)
    } else {
        run_double_buffered(job, chunker, config, exec)
    }
}

/// The paper's pipeline: one ingest thread per round (double buffering).
fn run_double_buffered<J: MapReduce>(
    job: &Arc<J>,
    mut chunker: Box<dyn Chunker>,
    config: &JobConfig,
    exec: Executor<'_>,
) -> io::Result<JobResult<J::Key, J::Output>> {
    let mut timer = PhaseTimer::start_job();
    timer.mark_fused();
    let mut stats = JobStats::default();
    // Created once, persists across all map rounds.
    let container = Arc::new(job.make_container());

    // Round 0: ingest the first chunk serially.
    timer.begin(Phase::Ingest);
    let mut current = chunker.next_chunk()?;
    timer.end(Phase::Ingest);

    while let Some(chunk) = current.take() {
        stats.ingest_chunks += 1;
        stats.bytes_ingested += chunk.len() as u64;
        stats.map_rounds += 1;

        timer.begin(Phase::Ingest);
        timer.begin(Phase::Map);
        // "create thread to ingest next chunk / run mappers on previous
        // chunk / destroy thread" — the scope is the create/destroy.
        let (next, round) = std::thread::scope(|scope| {
            let ingest = scope.spawn(|| {
                let t0 = Instant::now();
                let next = chunker.next_chunk();
                (next, t0.elapsed())
            });
            let t0 = Instant::now();
            let outcome = map_wave(job, &container, &chunk, config, exec);
            let map = t0.elapsed();
            stats.map_tasks += outcome.tasks;
            stats.add_wave(outcome);
            let (next, ingest_time) = ingest.join().expect("ingest thread panicked");
            let feedback =
                RoundFeedback { chunk_bytes: chunk.len() as u64, ingest: ingest_time, map };
            next.map(|n| (n, feedback))
        })?;
        stats.threads_spawned += 1; // the ingest thread
        timer.end(Phase::Map);
        timer.end(Phase::Ingest);

        chunker.feedback(round);
        stats.rounds.push(super::RoundRecord {
            chunk_bytes: round.chunk_bytes,
            ingest: round.ingest,
            map: round.map,
        });
        current = next;
    }

    Ok(finish_job(job, container, config, exec, timer, stats))
}

/// N-buffered variant: a single long-lived ingest thread streams chunks
/// through a bounded channel of `prefetch_depth` chunks while the main
/// thread runs map waves. Round feedback is not delivered here — the
/// chunker lives on the ingest thread — so adaptive chunking pairs with
/// `prefetch_depth == 1` (enforced by config validation).
fn run_buffered<J: MapReduce>(
    job: &Arc<J>,
    mut chunker: Box<dyn Chunker>,
    config: &JobConfig,
    exec: Executor<'_>,
) -> io::Result<JobResult<J::Key, J::Output>> {
    let mut timer = PhaseTimer::start_job();
    timer.mark_fused();
    let mut stats = JobStats::default();
    let container = Arc::new(job.make_container());

    timer.begin(Phase::Ingest);
    timer.begin(Phase::Map);
    let ingest_result: io::Result<()> = std::thread::scope(|scope| {
        let (tx, rx) =
            crossbeam_channel::bounded::<crate::chunk::IngestChunk>(config.prefetch_depth);
        let producer = scope.spawn(move || -> io::Result<()> {
            while let Some(chunk) = chunker.next_chunk()? {
                if tx.send(chunk).is_err() {
                    break; // consumer went away (map-side panic)
                }
            }
            Ok(())
        });
        for chunk in rx {
            stats.ingest_chunks += 1;
            stats.bytes_ingested += chunk.len() as u64;
            stats.map_rounds += 1;
            let outcome = map_wave(job, &container, &chunk, config, exec);
            stats.map_tasks += outcome.tasks;
            stats.add_wave(outcome);
        }
        producer.join().expect("ingest thread panicked")
    });
    ingest_result?;
    stats.threads_spawned += 1; // the long-lived ingest thread
    timer.end(Phase::Map);
    timer.end(Phase::Ingest);

    Ok(finish_job(job, container, config, exec, timer, stats))
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are clearer mutated stepwise
mod tests {
    use super::*;
    use crate::chunk::{AdaptiveConfig, Chunking};
    use supmr_storage::{MemFileSet, MemSource};

    #[test]
    fn chunker_construction_validates_shape() {
        let mut config = JobConfig::default();
        config.chunking = Chunking::Inter { chunk_bytes: 64 };
        assert!(make_chunker(Input::stream(MemSource::from(vec![0u8; 10])), &config).is_ok());
        assert!(make_chunker(Input::files(MemFileSet::new(vec![])), &config).is_err());

        config.chunking = Chunking::Intra { files_per_chunk: 2 };
        assert!(make_chunker(Input::files(MemFileSet::new(vec![])), &config).is_ok());
        assert!(make_chunker(Input::stream(MemSource::from(vec![])), &config).is_err());

        config.chunking = Chunking::Hybrid { chunk_bytes: 100 };
        assert!(make_chunker(Input::files(MemFileSet::new(vec![])), &config).is_ok());
        assert!(make_chunker(Input::stream(MemSource::from(vec![])), &config).is_err());

        config.chunking = Chunking::Adaptive(AdaptiveConfig::default());
        assert!(make_chunker(Input::stream(MemSource::from(vec![])), &config).is_ok());
        assert!(make_chunker(Input::files(MemFileSet::new(vec![])), &config).is_err());

        config.chunking = Chunking::None;
        assert!(make_chunker(Input::stream(MemSource::from(vec![])), &config).is_err());
    }
}
