//! Fluent job construction.
//!
//! [`Job`] wraps a [`MapReduce`] application and a [`JobConfig`] behind
//! a builder so call sites read as configuration rather than struct
//! plumbing:
//!
//! ```
//! use supmr::api::{Emit, MapReduce};
//! use supmr::combiner::Count;
//! use supmr::container::HashContainer;
//! use supmr::runtime::{Input, Job, MergeMode};
//! use supmr::Chunking;
//! use supmr_storage::MemSource;
//!
//! struct LineCount;
//! impl MapReduce for LineCount {
//!     type Key = ();
//!     type Value = u8;
//!     type Combiner = Count;
//!     type Output = u64;
//!     type Container = HashContainer<(), u8, Count>;
//!     fn make_container(&self) -> Self::Container { HashContainer::default() }
//!     fn map(&self, split: &[u8], emit: &mut dyn Emit<(), u8>) {
//!         for _ in split.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
//!             emit.emit((), 0);
//!         }
//!     }
//!     fn reduce(&self, _k: &(), n: u64) -> u64 { n }
//! }
//!
//! let result = Job::new(LineCount)
//!     .chunking(Chunking::Inter { chunk_bytes: 16 })
//!     .merge(MergeMode::Unsorted)
//!     .workers(2)
//!     .split_bytes(8)
//!     .run(Input::stream(MemSource::from(b"a\nb\nc\n".to_vec())))
//!     .unwrap();
//! assert_eq!(result.pairs, vec![((), 3)]);
//! ```

use super::{run_single, GovernorConfig, Input, JobConfig, JobResult, MergeMode};
use crate::api::MapReduce;
use crate::chunk::Chunking;
use crate::error::Result;
use crate::pool::PoolMode;
use std::sync::Arc;
use std::time::Duration;
use supmr_metrics::{Registry, TraceEvent, TraceLevel};
use supmr_storage::RecordFormat;

/// A configured-but-not-yet-run job.
#[derive(Debug)]
pub struct Job<J: MapReduce> {
    app: J,
    config: JobConfig,
}

impl<J: MapReduce> Job<J> {
    /// Start building a job around an application, with default
    /// configuration (original runtime, unsorted output).
    pub fn new(app: J) -> Job<J> {
        Job { app, config: JobConfig::default() }
    }

    /// Set the ingest chunking strategy.
    pub fn chunking(mut self, chunking: Chunking) -> Self {
        self.config.chunking = chunking;
        self
    }

    /// Set the merge mode.
    pub fn merge(mut self, merge: MergeMode) -> Self {
        self.config.merge = merge;
        self
    }

    /// Set both mapper and reducer worker counts.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.map_workers = workers;
        self.config.reduce_workers = workers;
        self
    }

    /// Set the input split size.
    pub fn split_bytes(mut self, bytes: usize) -> Self {
        self.config.split_bytes = bytes;
        self
    }

    /// Set the record framing used for chunk/split boundary adjustment.
    pub fn record_format(mut self, format: RecordFormat) -> Self {
        self.config.record_format = format;
        self
    }

    /// Set the ingest prefetch depth (1 = the paper's double buffering).
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.config.prefetch_depth = depth;
        self
    }

    /// Set the worker provisioning mode (per-wave spawn/join vs one
    /// persistent pool per job).
    pub fn pool(mut self, mode: PoolMode) -> Self {
        self.config.pool = mode;
        self
    }

    /// Collect a CPU utilization trace at this sampling interval.
    pub fn sample_utilization(mut self, interval: Duration) -> Self {
        self.config.sample_utilization = Some(interval);
        self
    }

    /// Record a typed event trace at this detail level; the trace comes
    /// back in [`JobReport::trace`](super::JobReport::trace).
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.config.trace = level;
        self
    }

    /// Invoke `callback` synchronously on every trace event as the job
    /// runs (live progress, streaming exporters). Requires
    /// [`trace`](Job::trace) to be set to an enabled level. Keep the
    /// callback cheap: it runs on the emitting worker thread.
    pub fn on_event(mut self, callback: impl Fn(&TraceEvent) + Send + Sync + 'static) -> Self {
        self.config.on_event = Some(Arc::new(callback));
        self
    }

    /// Attach a live metrics [`Registry`]: every layer maintains its
    /// `supmr.*` families there while the job runs, and the final
    /// snapshot comes back in
    /// [`JobReport::metrics`](super::JobReport::metrics).
    pub fn metrics(mut self, registry: Registry) -> Self {
        self.config.metrics = Some(registry);
        self
    }

    /// Serve a `/metrics` OpenMetrics scrape endpoint at `addr` (e.g.
    /// `"127.0.0.1:9400"`) for the duration of the job. Creates a
    /// registry if [`metrics`](Job::metrics) was not called.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.config.metrics_addr = Some(addr.into());
        self
    }

    /// Fix the container's hash seed so key→partition placement (and,
    /// single-threaded, output order) is reproducible across runs. The
    /// default is a random per-container seed.
    pub fn hash_seed(mut self, seed: u64) -> Self {
        self.config.hash_seed = Some(seed);
        self
    }

    /// Run the job adaptively: a feedback governor samples the live
    /// metrics at `governor.interval` and retunes scheduling widths,
    /// prefetch depth, the absorb sweep mask, and spill watermarks
    /// mid-job (DESIGN.md §3k). Creates a registry if
    /// [`metrics`](Job::metrics) was not called; decisions come back in
    /// [`JobReport::governor`](super::JobReport::governor).
    pub fn adaptive(mut self, governor: GovernorConfig) -> Self {
        self.config.governor = Some(governor);
        self
    }

    /// Cap the intermediate set's resident footprint at `bytes`: past
    /// the budget the container spills sorted runs to disk and the
    /// reduce phase streams an external merge over them. Requires the
    /// application to provide a
    /// [`spill_codec`](crate::api::MapReduce::spill_codec).
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.config.memory_budget = Some(bytes);
        self
    }

    /// Write spill runs under `dir` (created if absent) instead of a
    /// per-job temporary directory.
    pub fn spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.spill_dir = Some(dir.into());
        self
    }

    /// Override the whole configuration.
    pub fn config(mut self, config: JobConfig) -> Self {
        self.config = config;
        self
    }

    /// The configuration as currently built.
    pub fn config_ref(&self) -> &JobConfig {
        &self.config
    }

    /// Run the job on `input` — the degenerate single-stage pipeline.
    ///
    /// # Errors
    /// Returns [`SupmrError::InvalidConfig`](crate::SupmrError::InvalidConfig)
    /// for invalid configurations or a chunking strategy that does not
    /// match the input shape,
    /// [`SupmrError::Ingest`](crate::SupmrError::Ingest) for I/O
    /// failures during ingest, and
    /// [`SupmrError::TaskPanic`](crate::SupmrError::TaskPanic) for
    /// crashed tasks.
    pub fn run(self, input: Input) -> Result<JobResult<J::Key, J::Output>> {
        run_single(self.app, input, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Emit;
    use crate::combiner::Sum;
    use crate::container::HashContainer;
    use supmr_storage::MemSource;

    struct CharCount;

    impl MapReduce for CharCount {
        type Key = u8;
        type Value = u64;
        type Combiner = Sum;
        type Output = u64;
        type Container = HashContainer<u8, u64, Sum>;

        fn make_container(&self) -> Self::Container {
            HashContainer::default()
        }

        fn map(&self, split: &[u8], emit: &mut dyn Emit<u8, u64>) {
            for &b in split.iter().filter(|b| !b.is_ascii_whitespace()) {
                emit.emit(b, 1);
            }
        }

        fn reduce(&self, _k: &u8, acc: u64) -> u64 {
            acc
        }
    }

    #[test]
    fn builder_settings_reach_the_config() {
        let job = Job::new(CharCount)
            .chunking(Chunking::Inter { chunk_bytes: 128 })
            .merge(MergeMode::PWay { ways: 2 })
            .workers(3)
            .split_bytes(64)
            .record_format(RecordFormat::Newline)
            .prefetch_depth(2)
            .pool(PoolMode::Persistent)
            .sample_utilization(Duration::from_millis(50))
            .hash_seed(42)
            .adaptive(GovernorConfig::default());
        let c = job.config_ref();
        assert_eq!(c.chunking, Chunking::Inter { chunk_bytes: 128 });
        assert_eq!(c.merge, MergeMode::PWay { ways: 2 });
        assert_eq!(c.map_workers, 3);
        assert_eq!(c.reduce_workers, 3);
        assert_eq!(c.split_bytes, 64);
        assert_eq!(c.prefetch_depth, 2);
        assert_eq!(c.pool, PoolMode::Persistent);
        assert!(c.sample_utilization.is_some());
        assert_eq!(c.hash_seed, Some(42));
        assert_eq!(c.governor, Some(GovernorConfig::default()));
    }

    #[test]
    fn adaptive_run_reports_governor_state() {
        let result = Job::new(CharCount)
            .chunking(Chunking::Inter { chunk_bytes: 8 })
            .workers(2)
            .split_bytes(4)
            .adaptive(GovernorConfig {
                interval: Duration::from_millis(1),
                ..GovernorConfig::default()
            })
            .run(Input::stream(MemSource::from(b"aa b\nab\ncd e\nfg\n".to_vec())))
            .unwrap();
        let gov = result.report.governor.as_ref().expect("governor report present");
        assert_eq!(gov.interval_ms, 1);
        assert!(gov.final_map_width >= 1);
        let text = result.report.to_json_string();
        assert!(text.contains("\"supmr.governor.v1\""), "report JSON carries the governor block");
    }

    #[test]
    fn builder_runs_jobs() {
        let result = Job::new(CharCount)
            .chunking(Chunking::Inter { chunk_bytes: 8 })
            .merge(MergeMode::PWay { ways: 2 })
            .workers(2)
            .split_bytes(4)
            .run(Input::stream(MemSource::from(b"aa b\nab\n".to_vec())))
            .unwrap();
        assert_eq!(result.pairs, vec![(b'a', 3), (b'b', 2)], "sorted by key via p-way merge");
    }

    #[test]
    fn builder_propagates_validation_errors() {
        let err = Job::new(CharCount)
            .workers(0)
            .run(Input::stream(MemSource::from(vec![1u8])))
            .unwrap_err();
        assert!(matches!(err, crate::SupmrError::InvalidConfig { .. }));
    }

    #[test]
    fn trace_and_on_event_reach_the_config() {
        let job = Job::new(CharCount).trace(TraceLevel::Task).on_event(|_e| {});
        assert_eq!(job.config_ref().trace, TraceLevel::Task);
        assert!(job.config_ref().on_event.is_some());
    }

    #[test]
    fn traced_run_returns_a_trace_and_callback_fires() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let result = Job::new(CharCount)
            .chunking(Chunking::Inter { chunk_bytes: 8 })
            .workers(2)
            .split_bytes(4)
            .trace(TraceLevel::Wave)
            .on_event(move |_e| {
                seen2.fetch_add(1, Ordering::Relaxed);
            })
            .run(Input::stream(MemSource::from(b"aa b\nab\ncd e\nfg\n".to_vec())))
            .unwrap();
        let trace = result.report.trace.as_ref().expect("trace recorded");
        assert!(trace.event_count() > 0);
        trace.validate().expect("spans nest cleanly");
        assert_eq!(seen.load(Ordering::Relaxed), trace.event_count() as u64);
    }
}
