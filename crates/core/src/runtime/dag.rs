//! Multi-stage DAG pipelines: [`Pipeline`], [`Stage`], [`StageId`].
//!
//! A [`Pipeline`] strings several MapReduce applications together so
//! the reduced output of one stage feeds the next as an in-memory
//! input — the multi-pass jobs (sample→sort, iterative clustering)
//! that a scale-up runtime otherwise forces through `Vec<(K, V)>`
//! materialization or, worse, the filesystem. The hand-off reuses the
//! spill-run framing ([`PairCodec`]-encoded records behind a
//! `len | crc32` header): a feeding stage's reduce workers encode
//! straight into frame buffers (see
//! [`MapReduce::handoff_codec`]), and the fed stage maps over the
//! framed bytes with [`FrameIter`](super::FrameIter) — no intermediate
//! pair vector exists between the stages, which
//! [`HandoffStats::materialized_pairs`](super::HandoffStats) asserts.
//!
//! Scheduling respects declared dependencies ([`Stage::reads`],
//! [`Stage::after`]): every stage whose upstreams have completed runs
//! immediately on its own driver thread, so independent branches of
//! the DAG execute concurrently — sharing one persistent
//! [`WorkerPool`], one [`Tracer`], one metrics [`Registry`], and (under
//! a memory budget) one [`MemoryAccountant`], so the budget bounds the
//! *pipeline's* resident footprint, not each stage's separately.
//!
//! ```
//! use supmr::api::{Emit, MapReduce};
//! use supmr::combiner::Sum;
//! use supmr::container::HashContainer;
//! use supmr::runtime::{FrameIter, Input, Pipeline, Stage};
//! use supmr::spill::PairCodec;
//! use supmr_storage::MemSource;
//!
//! // How (byte, count) pairs cross the stage boundary.
//! const COUNTS: PairCodec<u8, u64> = PairCodec {
//!     encode: |k, n, buf| {
//!         buf.push(*k);
//!         buf.extend_from_slice(&n.to_le_bytes());
//!     },
//!     decode: |b| Some((*b.first()?, u64::from_le_bytes(b.get(1..9)?.try_into().ok()?))),
//!     size_hint: |_, _| 9,
//! };
//!
//! struct CharCount;
//! impl MapReduce for CharCount {
//!     type Key = u8;
//!     type Value = u64;
//!     type Combiner = Sum;
//!     type Output = u64;
//!     type Container = HashContainer<u8, u64, Sum>;
//!     fn make_container(&self) -> Self::Container { HashContainer::default() }
//!     fn map(&self, split: &[u8], emit: &mut dyn Emit<u8, u64>) {
//!         for &b in split.iter().filter(|b| !b.is_ascii_whitespace()) {
//!             emit.emit(b, 1);
//!         }
//!     }
//!     fn reduce(&self, _k: &u8, n: u64) -> u64 { n }
//!     // Reduced pairs stream to the next stage as framed bytes.
//!     fn handoff_codec(&self) -> Option<PairCodec<u8, u64>> { Some(COUNTS) }
//! }
//!
//! struct Total;
//! impl MapReduce for Total {
//!     type Key = ();
//!     type Value = u64;
//!     type Combiner = Sum;
//!     type Output = u64;
//!     type Container = HashContainer<(), u64, Sum>;
//!     fn make_container(&self) -> Self::Container { HashContainer::default() }
//!     fn map(&self, split: &[u8], emit: &mut dyn Emit<(), u64>) {
//!         for (_key, n) in FrameIter::new(split, COUNTS) {
//!             emit.emit((), n);
//!         }
//!     }
//!     fn reduce(&self, _k: &(), n: u64) -> u64 { n }
//! }
//!
//! let mut p: Pipeline<(), u64> = Pipeline::new();
//! let counts = p.stage(
//!     Stage::new("count", CharCount)
//!         .input(Input::stream(MemSource::from(b"ab ba c\n".to_vec()))),
//! );
//! p.stage(Stage::new("total", Total).reads(counts));
//! let result = p.run()?;
//! assert_eq!(result.pairs, vec![((), 5)]);
//! # Ok::<(), supmr::SupmrError>(())
//! ```
//!
//! [`PairCodec`]: crate::spill::PairCodec
//! [`MapReduce::handoff_codec`]: crate::api::MapReduce::handoff_codec
//! [`WorkerPool`]: crate::pool::WorkerPool
//! [`Tracer`]: supmr_metrics::Tracer
//! [`Registry`]: supmr_metrics::Registry
//! [`MemoryAccountant`]: crate::spill::MemoryAccountant

use super::handoff::StageData;
use super::{
    compose_callbacks, diagnose, flow_ledger, run_stage, Input, JobConfig, JobReport, JobStats,
    StageMetrics, StageOutput, StageReport, StageResult, StageWiring,
};
use crate::api::MapReduce;
use crate::chunk::Chunking;
use crate::error::{panic_payload_string, Result, SupmrError};
use crate::pool::{Executor, PoolMetrics, PoolMode, WorkerPool};
use crate::spill::{MemoryAccountant, SpillMetrics};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use supmr_metrics::sampler::UtilizationSampler;
use supmr_metrics::{
    DebugState, EventKind, MetricsServer, Phase, PhaseTimings, Registry, TraceRing, Tracer,
};
use supmr_storage::RecordFormat;

/// Handle to a stage within the [`Pipeline`] that created it — the only
/// way to name a dependency ([`Stage::reads`], [`Stage::after`]).
///
/// Handles are issued in insertion order by [`Pipeline::stage`], so a
/// dependency edge always points at an *earlier* stage and a pipeline
/// is acyclic by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(pub(crate) usize);

type AppFactory<J> = Box<dyn FnMut(u64) -> J + Send>;
type InputFactory = Box<dyn FnMut(u64) -> Result<Input> + Send>;

/// One named MapReduce application within a [`Pipeline`], plus its
/// input edge (an external [`Input`] or an upstream stage's hand-off)
/// and optional ordering constraints.
pub struct Stage<J: MapReduce> {
    name: String,
    factory: AppFactory<J>,
    input: Option<InputFactory>,
    reads: Option<StageId>,
    after: Vec<usize>,
    config: Option<JobConfig>,
}

impl<J: MapReduce> Stage<J> {
    /// A stage that runs `app` once. For iterative pipelines
    /// ([`Pipeline::until`]) use [`Stage::from_factory`], which builds
    /// a fresh application per iteration.
    pub fn new(name: impl Into<String>, app: J) -> Stage<J> {
        let mut app = Some(app);
        Stage::from_factory(name, move |_| {
            app.take().expect(
                "one-shot stage application re-run; build iterative stages with Stage::from_factory",
            )
        })
    }

    /// A stage whose application is rebuilt by `factory` at every
    /// pipeline iteration (the argument is the 0-based iteration) —
    /// how an iterative job like k-means re-parameterizes each pass.
    pub fn from_factory(
        name: impl Into<String>,
        factory: impl FnMut(u64) -> J + Send + 'static,
    ) -> Stage<J> {
        Stage {
            name: name.into(),
            factory: Box::new(factory),
            input: None,
            reads: None,
            after: Vec::new(),
            config: None,
        }
    }

    /// Feed the stage from an external input. One-shot: an iterative
    /// pipeline re-opens its input via [`Stage::input_with`] instead.
    /// Mutually exclusive with [`Stage::reads`].
    pub fn input(self, input: Input) -> Self {
        let mut input = Some(input);
        self.input_with(move |_| {
            Ok(input.take().expect(
                "one-shot stage input re-run; build iterative inputs with Stage::input_with",
            ))
        })
    }

    /// Feed the stage from an input rebuilt per iteration. Mutually
    /// exclusive with [`Stage::reads`].
    pub fn input_with(mut self, f: impl FnMut(u64) -> Result<Input> + Send + 'static) -> Self {
        self.input = Some(Box::new(f));
        self
    }

    /// Feed the stage from `upstream`'s reduced output: the upstream
    /// stage encodes each `(key, output)` pair through its
    /// [`handoff_codec`](MapReduce::handoff_codec) into framed bytes,
    /// and this stage's `map` decodes them with
    /// [`FrameIter`](super::FrameIter). Mutually exclusive with an
    /// external input.
    pub fn reads(mut self, upstream: StageId) -> Self {
        self.reads = Some(upstream);
        self
    }

    /// Order this stage after `upstream` without consuming its output
    /// (a pure scheduling edge).
    pub fn after(mut self, upstream: StageId) -> Self {
        self.after.push(upstream.0);
        self
    }

    /// Override stage-local knobs (workers, chunking, split size,
    /// merge mode, record format, hash seed). Pipeline-owned
    /// facilities — tracing, metrics, utilization sampling, the memory
    /// budget and spill store — always come from the *pipeline's*
    /// config so all stages share them; overrides of those fields are
    /// ignored.
    pub fn config(mut self, config: JobConfig) -> Self {
        self.config = Some(config);
        self
    }
}

/// Execution context a stage driver receives: the pipeline's executor
/// and tracer, borrowed for the duration of the stage.
struct StageCtx<'p> {
    exec: Executor<'p>,
    tracer: &'p Tracer,
}

/// A prepared stage execution: everything resolved on the coordinator,
/// ready to run on a driver thread.
type StageRun = Box<dyn for<'p> FnOnce(StageCtx<'p>) -> Result<ErasedOutcome> + Send>;

/// A finished stage with its key/output types erased so the scheduler
/// stays monomorphization-free across heterogeneous stages.
struct ErasedOutcome {
    /// Framed hand-off for downstream stages (non-terminal stages).
    handoff: Option<StageData>,
    /// Terminal output pairs, as `Vec<(K, O)>` behind `Any`.
    pairs: Option<Box<dyn Any + Send>>,
    report: JobReport,
    out_pairs: u64,
}

/// Pipeline-wide facilities every stage execution shares.
struct SharedRun {
    base: JobConfig,
    registry: Option<Registry>,
    accountant: Option<Arc<MemoryAccountant>>,
}

/// Object-safe view of a [`Stage`] the scheduler drives.
trait ErasedStage: Send {
    fn name(&self) -> &str;
    fn reads(&self) -> Option<usize>;
    fn after(&self) -> &[usize];
    fn has_input(&self) -> bool;
    /// Resolve the stage's application, input, and configuration for
    /// one iteration into a runnable closure.
    fn prepare(
        &mut self,
        index: usize,
        iteration: u64,
        feed: Option<StageData>,
        wants_handoff: bool,
        shared: &SharedRun,
    ) -> Result<StageRun>;
}

impl<J: MapReduce> ErasedStage for Stage<J> {
    fn name(&self) -> &str {
        &self.name
    }

    fn reads(&self) -> Option<usize> {
        self.reads.map(|StageId(i)| i)
    }

    fn after(&self) -> &[usize] {
        &self.after
    }

    fn has_input(&self) -> bool {
        self.input.is_some()
    }

    fn prepare(
        &mut self,
        index: usize,
        iteration: u64,
        feed: Option<StageData>,
        wants_handoff: bool,
        shared: &SharedRun,
    ) -> Result<StageRun> {
        let app = (self.factory)(iteration);
        let mut config = self.config.clone().unwrap_or_else(|| shared.base.clone());
        // Pipeline-owned facilities: one registry, tracer, sampler,
        // scrape server, pool, and byte budget for every stage.
        config.metrics = shared.registry.clone();
        config.metrics_addr = None;
        config.sample_utilization = None;
        config.on_event = None;
        config.trace = shared.base.trace;
        config.pool = shared.base.pool;
        config.memory_budget = shared.base.memory_budget;
        config.spill_dir = shared.base.spill_dir.clone();
        config.spill_store = shared.base.spill_store.clone();
        let input = match (feed, &mut self.input) {
            (Some(data), None) => {
                // A fed stage maps over the upstream hand-off buffer:
                // already resident, one frame-aligned split per
                // upstream partition, no record re-framing.
                config.chunking = Chunking::None;
                config.split_bytes = data.max_segment_len().max(1);
                config.record_format = RecordFormat::None;
                Input::resident(data.into_chunk())
            }
            (None, Some(f)) => f(iteration)?,
            (Some(_), Some(_)) => {
                unreachable!("validated: `reads` and an input are mutually exclusive")
            }
            (None, None) => {
                unreachable!("validated: every stage has an input or a `reads` upstream")
            }
        };
        config.validate()?;
        let codec = match wants_handoff {
            true => Some(app.handoff_codec().ok_or_else(|| {
                SupmrError::invalid_config(format!(
                    "stage '{}' feeds a downstream stage but its application provides no \
                     handoff codec",
                    self.name
                ))
            })?),
            false => None,
        };
        let app = Arc::new(app);
        let accountant = shared.accountant.clone();
        // Spill runs from concurrent stages and successive iterations
        // share one store: the prefix keeps their run names disjoint.
        let run_prefix = format!("s{index:02}-i{iteration:03}-");
        Ok(Box::new(move |ctx: StageCtx<'_>| {
            let wiring = StageWiring { handoff: codec, accountant, run_prefix };
            let StageResult { output, report } =
                run_stage(&app, input, &config, ctx.exec, ctx.tracer, wiring)?;
            let out_pairs = report.stats.output_pairs;
            Ok(match output {
                StageOutput::Handoff(data) => {
                    ErasedOutcome { handoff: Some(data), pairs: None, report, out_pairs }
                }
                StageOutput::Pairs(p) => ErasedOutcome {
                    handoff: None,
                    pairs: Some(Box::new(p) as Box<dyn Any + Send>),
                    report,
                    out_pairs,
                },
            })
        }))
    }
}

/// One iteration's outcome, handed to the [`Pipeline::until`]
/// predicate: the terminal stage's output plus this iteration's
/// per-stage reports.
#[derive(Debug)]
pub struct IterationReport<'a, K, O> {
    /// Completed iterations so far (1-based: the first call sees `1`).
    pub iteration: u64,
    /// The terminal stage's output pairs for this iteration.
    pub pairs: &'a [(K, O)],
    /// Per-stage reports for this iteration, in completion order.
    pub stages: &'a [StageReport],
}

/// A finished pipeline: the terminal stage's output (of the *last*
/// iteration) plus the aggregated [`JobReport`] with its per-stage
/// breakdown across all iterations.
#[derive(Debug)]
pub struct PipelineResult<K, O> {
    /// The terminal stage's reduced pairs, ordered per its
    /// [`MergeMode`](super::MergeMode).
    pub pairs: Vec<(K, O)>,
    /// Iterations executed (1 without [`Pipeline::until`]).
    pub iterations: u64,
    /// Aggregated timings/counters, with
    /// [`stages`](JobReport::stages) carrying the per-stage slices.
    pub report: JobReport,
}

impl<K: Ord + Clone, O: Clone> PipelineResult<K, O> {
    /// The output pairs sorted by key (stable), regardless of the
    /// terminal stage's merge mode — convenient for assertions.
    pub fn sorted_pairs(&self) -> Vec<(K, O)> {
        let mut v = self.pairs.clone();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

type UntilPred<K, O> = Box<dyn FnMut(&IterationReport<'_, K, O>) -> bool>;

/// A DAG of MapReduce stages executed as one job. See the
/// [module docs](self) for the model and a worked example.
///
/// `K` and `O` are the *terminal* stage's key and output types — the
/// types [`Pipeline::run`] returns. Exactly one stage must be terminal
/// (read by no other stage).
pub struct Pipeline<K, O> {
    config: JobConfig,
    stages: Vec<Box<dyn ErasedStage>>,
    until: Option<UntilPred<K, O>>,
    max_iterations: u64,
    _terminal: PhantomData<fn() -> (K, O)>,
}

impl<K: Send + 'static, O: Send + 'static> Default for Pipeline<K, O> {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl<K: Send + 'static, O: Send + 'static> Pipeline<K, O> {
    /// An empty pipeline with default configuration.
    pub fn new() -> Pipeline<K, O> {
        Pipeline {
            config: JobConfig::default(),
            stages: Vec::new(),
            until: None,
            max_iterations: u64::MAX,
            _terminal: PhantomData,
        }
    }

    /// Set the pipeline-wide configuration: the default for every
    /// stage, and the sole source of the pipeline-owned facilities
    /// (tracing, metrics, sampling, memory budget, spill store).
    pub fn config(mut self, config: JobConfig) -> Self {
        self.config = config;
        self
    }

    /// Append a stage; the returned [`StageId`] names it in downstream
    /// [`Stage::reads`]/[`Stage::after`] edges.
    pub fn stage<J: MapReduce>(&mut self, stage: Stage<J>) -> StageId {
        self.stages.push(Box::new(stage));
        StageId(self.stages.len() - 1)
    }

    /// Re-run the whole DAG until `stop` returns `true` (it sees each
    /// iteration's terminal output and stage reports) — the iterative
    /// driver k-means-style jobs need. Without `until` the pipeline
    /// runs exactly once. Stages that should vary per iteration use
    /// [`Stage::from_factory`]/[`Stage::input_with`].
    pub fn until(mut self, stop: impl FnMut(&IterationReport<'_, K, O>) -> bool + 'static) -> Self {
        self.until = Some(Box::new(stop));
        self
    }

    /// Hard cap on iterations under [`Pipeline::until`] (the pipeline
    /// stops after `n` iterations even if the predicate never fires).
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Execute the pipeline.
    ///
    /// # Errors
    /// [`SupmrError::InvalidConfig`] for a malformed DAG (no stages,
    /// zero or several terminal stages, a stage with both or neither
    /// of an input and a `reads` edge, a feeding stage without a
    /// hand-off codec, or a terminal stage whose key/output types
    /// don't match `K, O`), plus every per-stage error
    /// [`Job::run`](super::Job::run) can produce.
    pub fn run(mut self) -> Result<PipelineResult<K, O>> {
        if self.stages.is_empty() {
            return Err(SupmrError::invalid_config("a pipeline needs at least one stage"));
        }
        for (i, s) in self.stages.iter().enumerate() {
            let bad = |msg: String| Err(SupmrError::invalid_config(msg));
            match (s.reads(), s.has_input()) {
                (Some(u), false) if u >= i => {
                    return bad(format!(
                        "stage '{}' must read an earlier stage of the same pipeline",
                        s.name()
                    ));
                }
                (Some(_), true) => {
                    return bad(format!(
                        "stage '{}' has both an external input and a `reads` upstream",
                        s.name()
                    ));
                }
                (None, false) => {
                    return bad(format!(
                        "stage '{}' has neither an input nor a `reads` upstream",
                        s.name()
                    ));
                }
                _ => {}
            }
            if s.after().iter().any(|&a| a >= i) {
                return Err(SupmrError::invalid_config(format!(
                    "stage '{}' must be ordered after an earlier stage of the same pipeline",
                    s.name()
                )));
            }
        }
        // Exactly one terminal (unread) stage supplies the result.
        let mut consumers = vec![0usize; self.stages.len()];
        for s in &self.stages {
            if let Some(u) = s.reads() {
                consumers[u] += 1;
            }
        }
        let unread: Vec<usize> = (0..self.stages.len()).filter(|&i| consumers[i] == 0).collect();
        if unread.len() != 1 {
            let names: Vec<&str> = unread.iter().map(|&i| self.stages[i].name()).collect();
            return Err(SupmrError::invalid_config(format!(
                "a pipeline needs exactly one terminal (unread) stage; found {}: [{}]",
                unread.len(),
                names.join(", ")
            )));
        }

        let mut config = self.config;
        config.validate()?;
        // A scrape endpoint implies a registry for it to expose.
        if config.metrics_addr.is_some() && config.metrics.is_none() {
            config.metrics = Some(Registry::new());
        }
        let registry = config.metrics.clone();
        // One bandwidth ledger for the whole pipeline: every stage's
        // config inherits it, so flows aggregate across stages exactly
        // like the memory accountant below.
        let flow = flow_ledger(&mut config);
        let ring = (config.metrics_addr.is_some() && config.trace.enabled())
            .then(|| TraceRing::new(TraceRing::DEFAULT_CAP));
        let server = match (&config.metrics_addr, &registry) {
            (Some(addr), Some(r)) => {
                let mut state = DebugState::new(r.clone());
                if let Some(ring) = &ring {
                    state = state.with_ring(Arc::clone(ring));
                }
                Some(MetricsServer::serve_debug(addr, state).map_err(|e| {
                    SupmrError::invalid_config(format!("cannot serve metrics on {addr}: {e}"))
                })?)
            }
            _ => None,
        };
        let callback = compose_callbacks(config.on_event.clone(), ring.map(|r| r.callback()));
        let tracer = Tracer::new(config.trace, callback);
        let sampler = config.sample_utilization.map(UtilizationSampler::start);
        let pool = (config.pool == PoolMode::Persistent).then(|| {
            WorkerPool::new_instrumented(
                config.map_workers.max(config.reduce_workers),
                tracer.clone(),
                registry.as_ref().map(PoolMetrics::register),
            )
        });
        let exec = match &pool {
            Some(p) => Executor::Pool(p),
            None => Executor::Wave,
        };
        // One byte ledger for the whole pipeline: concurrent stages
        // budget against it together, so `memory_budget` bounds the
        // pipeline's resident footprint rather than each stage's.
        let accountant = config.memory_budget.map(|budget| {
            let metrics = registry.as_ref().map(SpillMetrics::register);
            let mut accountant = MemoryAccountant::new(budget);
            if let Some(m) = &metrics {
                m.budget_bytes.set(budget.min(i64::MAX as u64) as i64);
                accountant = accountant.with_gauge(m.resident_bytes.clone());
            }
            Arc::new(accountant)
        });
        let stage_metrics: Vec<Option<Arc<StageMetrics>>> = self
            .stages
            .iter()
            .map(|s| registry.as_ref().map(|r| StageMetrics::register(r, s.name())))
            .collect();
        let shared = SharedRun { base: config, registry: registry.clone(), accountant };

        let t0 = Instant::now();
        let mut stage_reports: Vec<StageReport> = Vec::new();
        let mut iterations: u64 = 0;
        let pairs: Vec<(K, O)> = loop {
            let iter_base = stage_reports.len();
            let raw = run_iteration(
                &mut self.stages,
                iterations,
                &consumers,
                &shared,
                exec,
                &tracer,
                &stage_metrics,
                &mut stage_reports,
            )?;
            let pairs = *raw.downcast::<Vec<(K, O)>>().map_err(|_| {
                SupmrError::invalid_config(
                    "the terminal stage's key/output types do not match the pipeline's; \
                     `Pipeline<K, O>` must use the terminal application's Key and Output",
                )
            })?;
            iterations += 1;
            let stop = match &mut self.until {
                Some(pred) => pred(&IterationReport {
                    iteration: iterations,
                    pairs: &pairs,
                    stages: &stage_reports[iter_base..],
                }),
                None => true,
            };
            if stop || iterations >= self.max_iterations {
                break pairs;
            }
        };

        // Aggregate: phase totals sum stage time (which can exceed the
        // wall total when stages overlap); the wall total is real.
        let mut timings = PhaseTimings::zero();
        for p in [Phase::Ingest, Phase::Map, Phase::Reduce, Phase::Merge] {
            timings.set_phase(p, stage_reports.iter().map(|s| s.timings.phase(p)).sum());
        }
        timings.set_total(t0.elapsed());
        let mut stats = JobStats::default();
        for sr in &stage_reports {
            accumulate(&mut stats, &sr.stats);
        }
        stats.output_pairs = pairs.len() as u64;
        if let Some(p) = &pool {
            // The pool's one-time spawn cost, counted once per pipeline.
            stats.threads_spawned += p.size() as u64;
        }
        let mut report =
            JobReport { timings, stats, stages: stage_reports, ..JobReport::default() };
        if let Some(s) = sampler {
            report.util = Some(s.stop());
        }
        if tracer.level().enabled() {
            report.trace = Some(tracer.finish());
        }
        if let Some(r) = &registry {
            report.metrics = Some(r.snapshot());
        }
        report.diag = Some(diagnose(&report, &flow, &shared.base));
        if let Some(s) = server {
            s.shutdown();
        }
        Ok(PipelineResult { pairs, iterations, report })
    }
}

/// Sum one stage's counters into the pipeline-level totals.
/// `output_pairs` is set from the terminal output afterwards, and
/// per-round timelines stay in the per-stage reports.
fn accumulate(total: &mut JobStats, s: &JobStats) {
    total.bytes_ingested += s.bytes_ingested;
    total.ingest_chunks += s.ingest_chunks;
    total.map_rounds += s.map_rounds;
    total.map_tasks += s.map_tasks;
    total.reduce_tasks += s.reduce_tasks;
    total.threads_spawned += s.threads_spawned;
    total.threads_reused += s.threads_reused;
    total.intermediate_pairs += s.intermediate_pairs;
    total.distinct_keys += s.distinct_keys;
    total.merge_rounds += s.merge_rounds;
    total.merge_elements_moved += s.merge_elements_moved;
    total.map_waiting += s.map_waiting;
    total.ingest_waiting += s.ingest_waiting;
    total.spill_runs += s.spill_runs;
    total.spill_bytes += s.spill_bytes;
}

/// Run every stage once, respecting dependency order: each stage whose
/// upstreams are done is dispatched onto its own driver thread, so
/// independent stages run concurrently over the shared executor.
/// Returns the terminal stage's pairs (type-erased).
#[allow(clippy::too_many_arguments)] // internal scheduler plumbing
fn run_iteration(
    stages: &mut [Box<dyn ErasedStage>],
    iteration: u64,
    consumers: &[usize],
    shared: &SharedRun,
    exec: Executor<'_>,
    tracer: &Tracer,
    stage_metrics: &[Option<Arc<StageMetrics>>],
    stage_reports: &mut Vec<StageReport>,
) -> Result<Box<dyn Any + Send>> {
    let n = stages.len();
    let mut launched = vec![false; n];
    let mut done = vec![false; n];
    let mut outputs: Vec<Option<StageData>> = vec![None; n];
    std::thread::scope(|scope| -> Result<Box<dyn Any + Send>> {
        let (tx, rx) = crossbeam_channel::unbounded::<(usize, Result<ErasedOutcome>)>();
        let mut terminal_pairs: Option<Box<dyn Any + Send>> = None;
        let mut completed = 0usize;
        while completed < n {
            // Launch every ready stage. Dependency edges point at
            // earlier stages only, so some stage is always ready and
            // the loop makes progress.
            for i in 0..n {
                let ready = !launched[i]
                    && stages[i].reads().is_none_or(|u| done[u])
                    && stages[i].after().iter().all(|&a| done[a]);
                if !ready {
                    continue;
                }
                // Hand-off buffers clone cheaply (shared bytes), which
                // lets several stages read one upstream.
                let feed = stages[i]
                    .reads()
                    .map(|u| outputs[u].clone().expect("a completed upstream produced a hand-off"));
                let run = stages[i].prepare(i, iteration, feed, consumers[i] > 0, shared)?;
                launched[i] = true;
                let tx = tx.clone();
                let stage_tracer = tracer.clone();
                let stage = i as u32;
                std::thread::Builder::new()
                    .name(format!("supmr-stage-{i}"))
                    .spawn_scoped(scope, move || {
                        // The span wraps the whole stage on this driver
                        // thread; inner phase spans nest inside it.
                        stage_tracer.emit(EventKind::StageStart { stage });
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            run(StageCtx { exec, tracer: &stage_tracer })
                        }))
                        .unwrap_or_else(|payload| {
                            Err(SupmrError::TaskPanic { payload: panic_payload_string(payload) })
                        });
                        let pairs = result.as_ref().map(|o| o.out_pairs).unwrap_or(0);
                        stage_tracer.emit(EventKind::StageEnd { stage, pairs });
                        // The receiver is gone iff the iteration
                        // already failed; this result is then moot.
                        let _ = tx.send((stage as usize, result));
                    })
                    .expect("spawning a pipeline stage driver thread");
            }
            let (i, result) = rx.recv().expect("a launched stage driver reports");
            let outcome = result?;
            done[i] = true;
            completed += 1;
            let handoff_stats = outcome.handoff.as_ref().map(StageData::stats);
            if let Some(m) = &stage_metrics[i] {
                m.runs.add(1);
                m.total_us.record_duration_us(outcome.report.timings.total());
                m.pairs_out.add(outcome.out_pairs);
                if let Some(h) = &handoff_stats {
                    m.handoff_bytes.add(h.bytes);
                }
            }
            stage_reports.push(StageReport {
                name: stages[i].name().to_string(),
                stage: i as u32,
                iteration,
                timings: outcome.report.timings,
                stats: outcome.report.stats,
                handoff: handoff_stats,
            });
            outputs[i] = outcome.handoff;
            if let Some(p) = outcome.pairs {
                terminal_pairs = Some(p);
            }
        }
        Ok(terminal_pairs.expect("the terminal stage produced pairs"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Emit, MapReduce};
    use crate::combiner::Sum;
    use crate::container::HashContainer;
    use crate::runtime::{FrameIter, MergeMode};
    use crate::spill::PairCodec;
    use supmr_storage::MemSource;

    const COUNTS: PairCodec<u8, u64> = PairCodec {
        encode: |k, n, buf| {
            buf.push(*k);
            buf.extend_from_slice(&n.to_le_bytes());
        },
        decode: |b| Some((*b.first()?, u64::from_le_bytes(b.get(1..9)?.try_into().ok()?))),
        size_hint: |_, _| 9,
    };

    struct CharCount {
        with_codec: bool,
    }

    impl MapReduce for CharCount {
        type Key = u8;
        type Value = u64;
        type Combiner = Sum;
        type Output = u64;
        type Container = HashContainer<u8, u64, Sum>;

        fn make_container(&self) -> Self::Container {
            HashContainer::default()
        }

        fn map(&self, split: &[u8], emit: &mut dyn Emit<u8, u64>) {
            for &b in split.iter().filter(|b| !b.is_ascii_whitespace()) {
                emit.emit(b, 1);
            }
        }

        fn reduce(&self, _k: &u8, n: u64) -> u64 {
            n
        }

        fn handoff_codec(&self) -> Option<PairCodec<u8, u64>> {
            self.with_codec.then_some(COUNTS)
        }
    }

    struct Total;

    impl MapReduce for Total {
        type Key = ();
        type Value = u64;
        type Combiner = Sum;
        type Output = u64;
        type Container = HashContainer<(), u64, Sum>;

        fn make_container(&self) -> Self::Container {
            HashContainer::default()
        }

        fn map(&self, split: &[u8], emit: &mut dyn Emit<(), u64>) {
            for (_key, n) in FrameIter::new(split, COUNTS) {
                emit.emit((), n);
            }
        }

        fn reduce(&self, _k: &(), n: u64) -> u64 {
            n
        }
    }

    fn text_input() -> Input {
        Input::stream(MemSource::from(b"ab ba c\nca bc\n".to_vec()))
    }

    #[test]
    fn two_stage_pipeline_streams_the_handoff() {
        let mut p: Pipeline<(), u64> = Pipeline::new();
        let counts = p.stage(
            Stage::new("count", CharCount { with_codec: true })
                .input(text_input())
                .config(JobConfig { merge: MergeMode::Unsorted, ..JobConfig::default() }),
        );
        p.stage(Stage::new("total", Total).reads(counts));
        let result = p.run().unwrap();
        assert_eq!(result.pairs, vec![((), 9)]);
        assert_eq!(result.iterations, 1);
        assert_eq!(result.report.stages.len(), 2);
        let count_stage = &result.report.stages[0];
        assert_eq!(count_stage.name, "count");
        let handoff = count_stage.handoff.expect("feeding stage reports hand-off stats");
        assert_eq!(handoff.pairs, 3, "one hand-off frame per distinct character");
        assert_eq!(
            handoff.materialized_pairs, 0,
            "unsorted hand-off streams straight out of the reduce workers"
        );
        assert!(handoff.bytes > 0);
        assert!(result.report.stages[1].handoff.is_none());
    }

    #[test]
    fn sorted_handoff_is_counted_as_materialized() {
        let mut p: Pipeline<(), u64> = Pipeline::new();
        let counts = p.stage(
            Stage::new("count", CharCount { with_codec: true })
                .input(text_input())
                .config(JobConfig { merge: MergeMode::PWay { ways: 2 }, ..JobConfig::default() }),
        );
        p.stage(Stage::new("total", Total).reads(counts));
        let result = p.run().unwrap();
        assert_eq!(result.pairs, vec![((), 9)]);
        let handoff = result.report.stages[0].handoff.expect("hand-off stats");
        assert_eq!(handoff.materialized_pairs, handoff.pairs, "sorted hand-off merges first");
    }

    #[test]
    fn until_reruns_the_dag() {
        let mut p: Pipeline<u8, u64> = Pipeline::new();
        p.stage(
            Stage::from_factory("count", |_| CharCount { with_codec: false })
                .input_with(|_| Ok(text_input())),
        );
        let result = p.until(|report| report.iteration >= 3).run().unwrap();
        assert_eq!(result.iterations, 3);
        assert_eq!(result.report.stages.len(), 3);
        assert_eq!(result.report.stages[2].iteration, 2);
        assert_eq!(result.sorted_pairs(), vec![(b'a', 3), (b'b', 3), (b'c', 3)]);
    }

    #[test]
    fn max_iterations_caps_a_never_satisfied_predicate() {
        let mut p: Pipeline<u8, u64> = Pipeline::new();
        p.stage(
            Stage::from_factory("count", |_| CharCount { with_codec: false })
                .input_with(|_| Ok(text_input())),
        );
        let result = p.until(|_| false).max_iterations(2).run().unwrap();
        assert_eq!(result.iterations, 2);
    }

    #[test]
    fn after_edges_schedule_without_consuming() {
        let mut p: Pipeline<(), u64> = Pipeline::new();
        let first =
            p.stage(Stage::new("first", CharCount { with_codec: true }).input(text_input()));
        p.stage(Stage::new("total", Total).reads(first).after(first));
        let result = p.run().unwrap();
        assert_eq!(result.pairs, vec![((), 9)]);
    }

    #[test]
    fn rejects_two_terminal_stages() {
        let mut p: Pipeline<u8, u64> = Pipeline::new();
        p.stage(Stage::new("one", CharCount { with_codec: false }).input(text_input()));
        p.stage(Stage::new("two", CharCount { with_codec: false }).input(text_input()));
        let err = p.run().unwrap_err();
        assert!(err.to_string().contains("exactly one terminal"), "{err}");
    }

    #[test]
    fn rejects_a_feeding_stage_without_a_codec() {
        let mut p: Pipeline<(), u64> = Pipeline::new();
        let counts =
            p.stage(Stage::new("count", CharCount { with_codec: false }).input(text_input()));
        p.stage(Stage::new("total", Total).reads(counts));
        let err = p.run().unwrap_err();
        assert!(matches!(err, SupmrError::InvalidConfig { .. }));
        assert!(err.to_string().contains("handoff codec"), "{err}");
    }

    #[test]
    fn rejects_input_and_reads_on_one_stage() {
        let mut p: Pipeline<(), u64> = Pipeline::new();
        let counts =
            p.stage(Stage::new("count", CharCount { with_codec: true }).input(text_input()));
        p.stage(Stage::new("total", Total).input(text_input()).reads(counts));
        let err = p.run().unwrap_err();
        assert!(err.to_string().contains("both"), "{err}");
    }

    #[test]
    fn rejects_a_stage_with_no_input_edge() {
        let mut p: Pipeline<(), u64> = Pipeline::new();
        p.stage(Stage::new("orphan", Total));
        let err = p.run().unwrap_err();
        assert!(err.to_string().contains("neither"), "{err}");
    }

    #[test]
    fn rejects_an_empty_pipeline() {
        let p: Pipeline<(), u64> = Pipeline::new();
        let err = p.run().unwrap_err();
        assert!(err.to_string().contains("at least one stage"), "{err}");
    }

    #[test]
    fn rejects_a_mismatched_terminal_type() {
        let mut p: Pipeline<String, String> = Pipeline::new();
        p.stage(Stage::new("count", CharCount { with_codec: false }).input(text_input()));
        let err = p.run().unwrap_err();
        assert!(err.to_string().contains("terminal stage"), "{err}");
    }
}
