//! The feedback governor: closing the diag→config loop at runtime.
//!
//! PR 8's diagnosis layer names the saturated resource *after* (or
//! during) a run; this module acts on the verdict *while the job runs*.
//! A governor thread samples the live metrics registry every
//! [`GovernorConfig::interval`], classifies the snapshot through
//! [`supmr_metrics::BottleneckReport::from_inputs`] (via
//! [`GovernorSample`]), and actuates through [`ActiveConfig`] — a small
//! set of `Arc`-shared atomic knobs every layer of the runtime consults
//! on its hot path instead of the static [`JobConfig`](super::JobConfig)
//! values:
//!
//! | verdict / signal                 | actuation                                   |
//! |----------------------------------|---------------------------------------------|
//! | ingest-bound                     | shrink map wave width, deepen prefetch      |
//! | map-bound                        | restore map wave width toward its base      |
//! | shuffle-bound / absorb p99 rising| widen the absorb lock-sweep shard mask      |
//! | resident near the high watermark | pre-emptive spill drain + lower low mark    |
//! | reduce/merge-bound               | raise reduce parallelism up to the pool cap |
//!
//! Actuations are damped twice: a verdict must repeat for
//! [`GovernorConfig::hysteresis`] consecutive ticks before it acts, and
//! each knob then rests for [`GovernorConfig::cooldown_ticks`] ticks.
//! The one exception is memory pressure, which is urgent and bypasses
//! hysteresis (but still cools down).
//!
//! Every decision is emitted as an
//! [`EventKind::GovernorAction`] trace event, mirrored into the
//! `supmr.governor.*` metric families, and logged into the
//! [`GovernorReport`] (`supmr.governor.v1`) the job report carries.
//!
//! **Determinism invariant**: no knob changes *what* is computed — only
//! scheduling widths, buffer depths, lock-sweep order, and spill timing.
//! Key→partition placement ([`JobConfig::reduce_workers`](super::JobConfig::reduce_workers) as partition
//! count, the container's hash seed) is never touched mid-job, so any
//! action sequence yields byte-identical output (property-tested below).

use crate::spill::MemoryAccountant;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use supmr_metrics::{
    Bottleneck, Counter, EventKind, Gauge, GovernorSample, Json, Registry, Tracer,
};

/// Widest prefetch depth the governor may request (chunks buffered
/// ahead of the mappers in the N-buffered pipeline).
pub(crate) const PREFETCH_CAP: usize = 8;

/// Widest absorb lock-sweep rotation mask (the container has 64 lock
/// shards, so offsets cover `0..=63`).
const SHARD_MASK_CAP: u64 = 63;

/// Most actions retained in the report log; later actions are counted
/// as dropped instead of growing without bound.
const MAX_ACTIONS: usize = 256;

/// Feedback governor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Sampling period of the governor thread.
    pub interval: Duration,
    /// Consecutive identical verdicts required before actuating.
    pub hysteresis: u32,
    /// Quiet ticks a knob rests after being moved.
    pub cooldown_ticks: u32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig { interval: Duration::from_millis(50), hysteresis: 2, cooldown_ticks: 2 }
    }
}

/// One recorded governor decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionRecord {
    /// Microseconds since the job's knobs were created.
    pub t_us: u64,
    /// The verdict (or controller name) that motivated the change.
    pub verdict: &'static str,
    /// The knob that moved.
    pub knob: &'static str,
    /// Its new value.
    pub value: u64,
}

/// The runtime-shared dynamic knobs: what the static [`JobConfig`]
/// widths become once a governor may move them mid-job. Every accessor
/// is a relaxed atomic load, cheap enough for per-wave hot paths.
///
/// [`JobConfig`]: super::JobConfig
pub struct ActiveConfig {
    map_width: AtomicUsize,
    reduce_width: AtomicUsize,
    prefetch_depth: AtomicUsize,
    /// Absorb lock-sweep rotation window (0 = every absorb sweeps from
    /// shard 0, the static behaviour). Widening spreads concurrent
    /// absorbs' first lock acquisitions across the shard array. Never
    /// affects key→shard placement.
    shard_mask: AtomicU64,
    /// One-shot pre-emptive spill drain request, consumed by the next
    /// absorb that sees it.
    drain: AtomicBool,
    /// Multi-tenant fair-share ceiling on both wave widths (0 = no
    /// cap). The serve daemon's share ledger moves this as jobs come
    /// and go; the governor's own raises stay clamped underneath it,
    /// so per-job tuning actuates *within* the job's share.
    share_cap: AtomicUsize,
    /// Cooperative cancellation flag, polled at round/phase boundaries.
    cancelled: AtomicBool,
    /// The job's byte ledger, attached once spill wiring exists — the
    /// governor's low-watermark lever.
    accountant: Mutex<Option<Arc<MemoryAccountant>>>,
    actions: Mutex<Vec<ActionRecord>>,
    dropped: AtomicU64,
    t0: Instant,
}

impl std::fmt::Debug for ActiveConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveConfig")
            .field("map_width", &self.map_width())
            .field("reduce_width", &self.reduce_width())
            .field("prefetch_depth", &self.prefetch_depth())
            .field("shard_mask", &self.shard_mask())
            .finish()
    }
}

impl ActiveConfig {
    /// Knobs seeded from the static widths the job was configured with.
    pub fn new(map_width: usize, reduce_width: usize, prefetch_depth: usize) -> ActiveConfig {
        ActiveConfig {
            map_width: AtomicUsize::new(map_width.max(1)),
            reduce_width: AtomicUsize::new(reduce_width.max(1)),
            prefetch_depth: AtomicUsize::new(prefetch_depth.max(1)),
            shard_mask: AtomicU64::new(0),
            drain: AtomicBool::new(false),
            share_cap: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            accountant: Mutex::new(None),
            actions: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            t0: Instant::now(),
        }
    }

    /// Current effective map wave width, clamped under the share cap.
    pub fn map_width(&self) -> usize {
        self.capped(self.map_width.load(Ordering::Relaxed))
    }

    /// Move the map wave width (clamped to at least 1).
    pub fn set_map_width(&self, w: usize) {
        self.map_width.store(w.max(1), Ordering::Relaxed);
    }

    /// Current effective reduce wave width, clamped under the share
    /// cap.
    pub fn reduce_width(&self) -> usize {
        self.capped(self.reduce_width.load(Ordering::Relaxed))
    }

    /// Move the reduce wave width (clamped to at least 1). Partition
    /// *count* never moves — only how many run concurrently.
    pub fn set_reduce_width(&self, w: usize) {
        self.reduce_width.store(w.max(1), Ordering::Relaxed);
    }

    /// Current effective ingest prefetch depth.
    pub fn prefetch_depth(&self) -> usize {
        self.prefetch_depth.load(Ordering::Relaxed)
    }

    /// Move the prefetch depth (clamped to `1..=PREFETCH_CAP`).
    pub fn set_prefetch_depth(&self, d: usize) {
        self.prefetch_depth.store(d.clamp(1, PREFETCH_CAP), Ordering::Relaxed);
    }

    /// Current absorb lock-sweep rotation mask.
    pub fn shard_mask(&self) -> u64 {
        self.shard_mask.load(Ordering::Relaxed)
    }

    /// Move the sweep rotation mask (clamped to `0..=63`).
    pub fn set_shard_mask(&self, mask: u64) {
        self.shard_mask.store(mask.min(SHARD_MASK_CAP), Ordering::Relaxed);
    }

    #[inline]
    fn capped(&self, w: usize) -> usize {
        match self.share_cap.load(Ordering::Relaxed) {
            0 => w,
            cap => w.min(cap),
        }
    }

    /// The current fair-share ceiling (0 = uncapped).
    pub fn share_cap(&self) -> usize {
        self.share_cap.load(Ordering::Relaxed)
    }

    /// Set the fair-share ceiling on both wave widths; 0 removes it.
    pub fn set_share_cap(&self, cap: usize) {
        self.share_cap.store(cap, Ordering::Relaxed);
    }

    /// Ask the job to stop at its next cancellation point. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Request one pre-emptive spill drain from the container.
    pub fn request_drain(&self) {
        self.drain.store(true, Ordering::Relaxed);
    }

    /// Consume a pending drain request (true at most once per request).
    pub fn take_drain(&self) -> bool {
        self.drain.swap(false, Ordering::Relaxed)
    }

    /// Attach the job's byte ledger so the governor can move its low
    /// watermark. Called by the spill wiring at job start.
    pub fn attach_accountant(&self, accountant: Arc<MemoryAccountant>) {
        *self.accountant.lock() = Some(accountant);
    }

    /// The attached byte ledger, if the job runs under a budget.
    pub fn accountant(&self) -> Option<Arc<MemoryAccountant>> {
        self.accountant.lock().clone()
    }

    /// Append a decision to the report log (bounded; overflow counts as
    /// dropped).
    pub fn record(&self, verdict: &'static str, knob: &'static str, value: u64) {
        let t_us = self.t0.elapsed().as_micros() as u64;
        let mut log = self.actions.lock();
        if log.len() < MAX_ACTIONS {
            log.push(ActionRecord { t_us, verdict, knob, value });
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Take the recorded actions and the overflow count (report
    /// assembly).
    pub(crate) fn take_log(&self) -> (Vec<ActionRecord>, u64) {
        (std::mem::take(&mut *self.actions.lock()), self.dropped.load(Ordering::Relaxed))
    }
}

/// Record a decision everywhere it is observable: the trace stream and
/// the report log. Used by the governor thread and by external
/// actuators (the adaptive chunk controller).
pub(crate) fn note_action(
    active: &ActiveConfig,
    tracer: &Tracer,
    verdict: &'static str,
    knob: &'static str,
    value: u64,
) {
    active.record(verdict, knob, value);
    tracer.emit(EventKind::GovernorAction { verdict, knob, value });
}

/// Static bounds the governor actuates within, derived from the job's
/// configured widths.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GovernorLimits {
    /// The configured map width — the restore target for map-bound.
    pub map_base: usize,
    /// Widest reduce parallelism (the pool size when persistent, the
    /// larger configured width otherwise).
    pub reduce_cap: usize,
}

/// Everything the job report keeps about a governor's run — rendered as
/// the `supmr.governor.v1` block.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorReport {
    /// Sampling period, milliseconds.
    pub interval_ms: u64,
    /// Sampling ticks taken.
    pub ticks: u64,
    /// Recorded decisions, in time order (bounded).
    pub actions: Vec<ActionRecord>,
    /// Decisions past the log bound.
    pub dropped_actions: u64,
    /// Tick counts per classifier verdict.
    pub verdicts: Vec<(String, u64)>,
    /// Final map wave width.
    pub final_map_width: usize,
    /// Final reduce wave width.
    pub final_reduce_width: usize,
    /// Final prefetch depth.
    pub final_prefetch_depth: usize,
    /// Final absorb sweep mask.
    pub final_shard_mask: u64,
}

impl GovernorReport {
    /// The report as a `supmr.governor.v1` JSON value.
    pub fn to_json(&self) -> Json {
        let actions = Json::Arr(
            self.actions
                .iter()
                .map(|a| {
                    Json::obj(vec![
                        ("t_us", Json::from(a.t_us)),
                        ("verdict", Json::str(a.verdict)),
                        ("knob", Json::str(a.knob)),
                        ("value", Json::from(a.value)),
                    ])
                })
                .collect(),
        );
        let verdicts =
            Json::obj(self.verdicts.iter().map(|(v, n)| (v.as_str(), Json::from(*n))).collect());
        let fin = Json::obj(vec![
            ("map_width", Json::from(self.final_map_width as u64)),
            ("reduce_width", Json::from(self.final_reduce_width as u64)),
            ("prefetch_depth", Json::from(self.final_prefetch_depth as u64)),
            ("shard_mask", Json::from(self.final_shard_mask)),
        ]);
        Json::obj(vec![
            ("schema", Json::str("supmr.governor.v1")),
            ("interval_ms", Json::from(self.interval_ms)),
            ("ticks", Json::from(self.ticks)),
            ("actions", actions),
            ("dropped_actions", Json::from(self.dropped_actions)),
            ("verdicts", verdicts),
            ("final", fin),
        ])
    }
}

/// Live `supmr.governor.*` handles.
struct GovernorMetrics {
    ticks: Counter,
    actions: Counter,
    map_width: Gauge,
    reduce_width: Gauge,
    prefetch_depth: Gauge,
    shard_mask: Gauge,
}

impl GovernorMetrics {
    fn register(registry: &Registry) -> GovernorMetrics {
        GovernorMetrics {
            ticks: registry.counter(
                "supmr.governor.ticks",
                "Sampling ticks the feedback governor has taken.",
                &[],
            ),
            actions: registry.counter(
                "supmr.governor.actions",
                "Knob movements the feedback governor has applied.",
                &[],
            ),
            map_width: registry.gauge(
                "supmr.governor.map_width",
                "Current effective map wave width.",
                &[],
            ),
            reduce_width: registry.gauge(
                "supmr.governor.reduce_width",
                "Current effective reduce wave width.",
                &[],
            ),
            prefetch_depth: registry.gauge(
                "supmr.governor.prefetch_depth",
                "Current effective ingest prefetch depth.",
                &[],
            ),
            shard_mask: registry.gauge(
                "supmr.governor.shard_mask",
                "Current absorb lock-sweep rotation mask.",
                &[],
            ),
        }
    }

    fn mirror(&self, active: &ActiveConfig) {
        self.map_width.set(active.map_width() as i64);
        self.reduce_width.set(active.reduce_width() as i64);
        self.prefetch_depth.set(active.prefetch_depth() as i64);
        self.shard_mask.set(active.shard_mask() as i64);
    }
}

/// Live `supmr.adaptive.*` handles surfacing the chunk controller's
/// internals (fitted overhead/throughput and the chosen size).
pub(crate) struct AdaptiveGauges {
    chunk_bytes: Gauge,
    overhead_us: Gauge,
    rate_bytes_per_sec: Gauge,
}

impl AdaptiveGauges {
    pub(crate) fn register(registry: &Registry) -> AdaptiveGauges {
        AdaptiveGauges {
            chunk_bytes: registry.gauge(
                "supmr.adaptive.chunk_bytes",
                "Chunk size the adaptive controller will use next round.",
                &[],
            ),
            overhead_us: registry.gauge(
                "supmr.adaptive.overhead_us",
                "Fitted fixed per-round overhead O, microseconds.",
                &[],
            ),
            rate_bytes_per_sec: registry.gauge(
                "supmr.adaptive.rate_bytes_per_sec",
                "Fitted map throughput R, bytes per second.",
                &[],
            ),
        }
    }

    pub(crate) fn mirror(&self, tuning: &crate::chunk::AdaptiveTuning) {
        self.chunk_bytes.set(tuning.chunk_bytes.min(i64::MAX as u64) as i64);
        self.overhead_us.set(tuning.overhead_us.min(i64::MAX as u64) as i64);
        self.rate_bytes_per_sec.set(tuning.rate_bytes_per_sec.min(i64::MAX as u64) as i64);
    }
}

/// The decision half of the governor, separated from the thread so the
/// table is unit-testable against synthetic samples.
struct GovernorState {
    config: GovernorConfig,
    limits: GovernorLimits,
    last_verdict: Option<Bottleneck>,
    streak: u32,
    last_p99: u64,
    rising: u32,
    cooldown: BTreeMap<&'static str, u32>,
    ticks: u64,
    verdicts: BTreeMap<&'static str, u64>,
}

impl GovernorState {
    fn new(config: GovernorConfig, limits: GovernorLimits) -> GovernorState {
        GovernorState {
            config,
            limits,
            last_verdict: None,
            streak: 0,
            last_p99: 0,
            rising: 0,
            cooldown: BTreeMap::new(),
            ticks: 0,
            verdicts: BTreeMap::new(),
        }
    }

    fn ready(&self, knob: &'static str) -> bool {
        self.cooldown.get(knob).copied().unwrap_or(0) == 0
    }

    fn cool(&mut self, knob: &'static str) {
        self.cooldown.insert(knob, self.config.cooldown_ticks);
    }

    /// Classify one sample and actuate; returns the applied decisions.
    fn tick(
        &mut self,
        sample: &GovernorSample,
        active: &ActiveConfig,
    ) -> Vec<(&'static str, &'static str, u64)> {
        self.ticks += 1;
        let verdict = sample.report.verdict;
        *self.verdicts.entry(verdict.as_str()).or_insert(0) += 1;
        if self.last_verdict == Some(verdict) {
            self.streak += 1;
        } else {
            self.last_verdict = Some(verdict);
            self.streak = 1;
        }
        self.rising = if sample.absorb_wait_p99_us > self.last_p99 { self.rising + 1 } else { 0 };
        self.last_p99 = sample.absorb_wait_p99_us;
        for ticks in self.cooldown.values_mut() {
            *ticks = ticks.saturating_sub(1);
        }
        let settled = self.streak >= self.config.hysteresis.max(1);

        let mut applied = Vec::new();
        let mut act =
            |state: &mut GovernorState, verdict: &'static str, knob: &'static str, value: u64| {
                applied.push((verdict, knob, value));
                state.cool(knob);
            };

        // Memory pressure is urgent: resident within 10% of the budget
        // (or a settled memory verdict) triggers a pre-emptive drain
        // and lowers the low watermark so the drain digs deeper.
        let near_budget = sample.budget_bytes > 0
            && sample.resident_bytes.saturating_mul(10) >= sample.budget_bytes.saturating_mul(9);
        if (near_budget || (settled && verdict == Bottleneck::MemoryBudgetBound))
            && self.ready("drain")
        {
            active.request_drain();
            act(self, Bottleneck::MemoryBudgetBound.as_str(), "drain", 1);
            if let Some(acct) = active.accountant() {
                let new_low = (acct.low() / 4 * 3).max(sample.budget_bytes / 8).max(1);
                if new_low < acct.low() {
                    acct.set_low(new_low);
                    act(self, Bottleneck::MemoryBudgetBound.as_str(), "low_watermark", new_low);
                }
            }
        }

        if settled {
            match verdict {
                Bottleneck::IngestBound => {
                    // The verdict keys on the ingest *busy* share, which
                    // inflates on a time-shared core (ingest read spans
                    // stretch across mapper preemption). Only actuate on
                    // direct starvation evidence: mappers measurably
                    // waiting for chunks for ≥5% of the wall.
                    let starved = sample.report.inputs.map_stall_us.saturating_mul(20)
                        >= sample.report.inputs.wall_us;
                    if starved && self.ready("map_width") {
                        let w = active.map_width();
                        if w > 1 {
                            active.set_map_width(w - 1);
                            act(self, verdict.as_str(), "map_width", (w - 1) as u64);
                        }
                    }
                    if starved && self.ready("prefetch_depth") {
                        let d = active.prefetch_depth();
                        if d < PREFETCH_CAP {
                            active.set_prefetch_depth(d + 1);
                            act(self, verdict.as_str(), "prefetch_depth", (d + 1) as u64);
                        }
                    }
                }
                Bottleneck::MapBound if self.ready("map_width") => {
                    let w = active.map_width();
                    if w < self.limits.map_base {
                        active.set_map_width(w + 1);
                        act(self, verdict.as_str(), "map_width", (w + 1) as u64);
                    }
                }
                Bottleneck::ReduceMergeBound if self.ready("reduce_width") => {
                    let w = active.reduce_width();
                    if w < self.limits.reduce_cap {
                        active.set_reduce_width(w + 1);
                        act(self, verdict.as_str(), "reduce_width", (w + 1) as u64);
                    }
                }
                _ => {}
            }
        }

        // Shuffle pressure: a settled shuffle verdict, or absorb-wait
        // p99 rising for `hysteresis` consecutive ticks above 1ms.
        let shuffling = (settled && verdict == Bottleneck::ShuffleBound)
            || (self.rising >= self.config.hysteresis.max(1) && sample.absorb_wait_p99_us > 1_000);
        if shuffling && self.ready("shard_mask") {
            let mask = active.shard_mask();
            if mask < SHARD_MASK_CAP {
                let next = ((mask << 1) | 1).min(SHARD_MASK_CAP);
                active.set_shard_mask(next);
                act(self, Bottleneck::ShuffleBound.as_str(), "shard_mask", next);
            }
        }

        applied
    }
}

/// What the governor thread hands back on stop.
struct ThreadStats {
    ticks: u64,
    verdicts: Vec<(String, u64)>,
}

/// A running governor: the sampling thread plus its stop signal.
pub(crate) struct GovernorRuntime {
    stop: std::sync::mpsc::Sender<()>,
    thread: JoinHandle<ThreadStats>,
    interval: Duration,
    active: Arc<ActiveConfig>,
}

impl GovernorRuntime {
    /// Start the governor thread sampling `registry` and actuating
    /// through `active`.
    pub(crate) fn spawn(
        config: GovernorConfig,
        registry: Registry,
        active: Arc<ActiveConfig>,
        tracer: Tracer,
        limits: GovernorLimits,
    ) -> GovernorRuntime {
        let (stop, stop_rx) = std::sync::mpsc::channel::<()>();
        let interval = config.interval;
        let thread_active = Arc::clone(&active);
        let thread = std::thread::Builder::new()
            .name("supmr-governor".to_string())
            .spawn(move || {
                let metrics = GovernorMetrics::register(&registry);
                metrics.mirror(&thread_active);
                let mut state = GovernorState::new(config, limits);
                let t0 = Instant::now();
                loop {
                    match stop_rx.recv_timeout(interval) {
                        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                    }
                    let snap = registry.snapshot();
                    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
                    let sample =
                        GovernorSample::from_snapshot(&snap, wall_us, limits.map_base as u64);
                    let actions = state.tick(&sample, &thread_active);
                    metrics.ticks.inc();
                    for (verdict, knob, value) in actions {
                        note_action(&thread_active, &tracer, verdict, knob, value);
                        metrics.actions.inc();
                    }
                    metrics.mirror(&thread_active);
                }
                ThreadStats {
                    ticks: state.ticks,
                    verdicts: state.verdicts.into_iter().map(|(v, n)| (v.to_string(), n)).collect(),
                }
            })
            .expect("spawning the governor thread");
        GovernorRuntime { stop, thread, interval, active }
    }

    /// Stop the thread and assemble the `supmr.governor.v1` report.
    pub(crate) fn stop(self) -> GovernorReport {
        let _ = self.stop.send(());
        let stats = self.thread.join().expect("governor thread panicked");
        let (actions, dropped_actions) = self.active.take_log();
        GovernorReport {
            interval_ms: self.interval.as_millis() as u64,
            ticks: stats.ticks,
            actions,
            dropped_actions,
            verdicts: stats.verdicts,
            final_map_width: self.active.map_width(),
            final_reduce_width: self.active.reduce_width(),
            final_prefetch_depth: self.active.prefetch_depth(),
            final_shard_mask: self.active.shard_mask(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supmr_metrics::{BottleneckReport, DiagInputs};

    fn sample_for(inputs: DiagInputs, p99: u64) -> GovernorSample {
        let resident_bytes = inputs.resident_bytes;
        let budget_bytes = inputs.budget_bytes;
        GovernorSample {
            report: BottleneckReport::from_inputs(inputs),
            absorb_wait_p99_us: p99,
            resident_bytes,
            budget_bytes,
        }
    }

    fn ingest_bound() -> GovernorSample {
        // map_stall/wall = 0.5 >= the 0.25 primary-share threshold.
        sample_for(
            DiagInputs {
                wall_us: 1_000_000,
                map_stall_us: 500_000,
                map_workers: 4,
                ..DiagInputs::default()
            },
            0,
        )
    }

    fn balanced() -> GovernorSample {
        sample_for(DiagInputs { wall_us: 1_000_000, map_workers: 4, ..DiagInputs::default() }, 0)
    }

    fn state(hysteresis: u32, cooldown: u32) -> GovernorState {
        GovernorState::new(
            GovernorConfig {
                interval: Duration::from_millis(10),
                hysteresis,
                cooldown_ticks: cooldown,
            },
            GovernorLimits { map_base: 4, reduce_cap: 8 },
        )
    }

    #[test]
    fn knobs_clamp_to_sane_ranges() {
        let a = ActiveConfig::new(4, 4, 1);
        a.set_map_width(0);
        assert_eq!(a.map_width(), 1);
        a.set_prefetch_depth(100);
        assert_eq!(a.prefetch_depth(), PREFETCH_CAP);
        a.set_shard_mask(1 << 20);
        assert_eq!(a.shard_mask(), 63);
        assert!(!a.take_drain());
        a.request_drain();
        assert!(a.take_drain());
        assert!(!a.take_drain(), "drain requests are one-shot");
    }

    #[test]
    fn hysteresis_delays_actuation() {
        let active = ActiveConfig::new(4, 4, 1);
        let mut s = state(2, 0);
        assert!(s.tick(&ingest_bound(), &active).is_empty(), "first verdict must not act");
        let acted = s.tick(&ingest_bound(), &active);
        assert!(!acted.is_empty(), "second identical verdict acts");
        assert_eq!(active.map_width(), 3, "ingest-bound narrows the map wave");
        assert_eq!(active.prefetch_depth(), 2, "ingest-bound deepens prefetch");
    }

    #[test]
    fn ingest_verdict_without_starvation_evidence_is_inert() {
        // On a time-shared core the ingest *busy* share alone can carry
        // the verdict while mappers never actually wait for chunks;
        // acting on that would tax runs that are really map-bound.
        let sample = sample_for(
            DiagInputs {
                wall_us: 1_000_000,
                ingest_us: 600_000,
                map_stall_us: 20_000, // 2% of wall: below the 5% gate
                map_workers: 4,
                ..DiagInputs::default()
            },
            0,
        );
        assert_eq!(sample.report.verdict, Bottleneck::IngestBound);
        let active = ActiveConfig::new(4, 4, 1);
        let mut s = state(1, 0);
        for _ in 0..4 {
            assert!(s.tick(&sample, &active).is_empty(), "no starvation, no action");
        }
        assert_eq!(active.map_width(), 4);
        assert_eq!(active.prefetch_depth(), 1);
    }

    #[test]
    fn verdict_change_resets_the_streak() {
        let active = ActiveConfig::new(4, 4, 1);
        let mut s = state(2, 0);
        s.tick(&ingest_bound(), &active);
        s.tick(&balanced(), &active);
        assert!(s.tick(&ingest_bound(), &active).is_empty(), "streak restarted");
        assert_eq!(active.map_width(), 4);
    }

    #[test]
    fn cooldown_spaces_repeat_actuations() {
        let active = ActiveConfig::new(8, 4, 1);
        let mut s = state(1, 3);
        assert!(!s.tick(&ingest_bound(), &active).is_empty());
        assert_eq!(active.map_width(), 7);
        // The knob moves at most once per cooldown_ticks period: with
        // cooldown 3 it rests two ticks even though the verdict holds.
        assert!(s.tick(&ingest_bound(), &active).is_empty());
        assert!(s.tick(&ingest_bound(), &active).is_empty());
        assert!(!s.tick(&ingest_bound(), &active).is_empty());
        assert_eq!(active.map_width(), 6);
    }

    #[test]
    fn map_width_never_narrows_below_one() {
        let active = ActiveConfig::new(2, 4, 1);
        let mut s = state(1, 0);
        for _ in 0..10 {
            s.tick(&ingest_bound(), &active);
        }
        assert_eq!(active.map_width(), 1);
        assert_eq!(active.prefetch_depth(), PREFETCH_CAP);
    }

    #[test]
    fn map_bound_restores_width_toward_base() {
        let active = ActiveConfig::new(4, 4, 1);
        active.set_map_width(2);
        let mut s = state(1, 0);
        // ingest_stall/wall = 0.5 -> map-bound.
        let map_bound = sample_for(
            DiagInputs {
                wall_us: 1_000_000,
                ingest_stall_us: 500_000,
                map_workers: 4,
                ..DiagInputs::default()
            },
            0,
        );
        for _ in 0..10 {
            s.tick(&map_bound, &active);
        }
        assert_eq!(active.map_width(), 4, "restores to the configured base, not beyond");
    }

    #[test]
    fn rising_absorb_p99_widens_the_shard_mask() {
        let active = ActiveConfig::new(4, 4, 1);
        let mut s = state(2, 0);
        for p99 in [10_000u64, 20_000, 30_000, 40_000] {
            s.tick(
                &sample_for(DiagInputs { wall_us: 1_000_000, ..Default::default() }, p99),
                &active,
            );
        }
        assert!(active.shard_mask() > 0, "sustained rising p99 must widen the mask");
        // Widening is progressive: 1, then 3, ...
        assert!(active.shard_mask() <= 63);
    }

    #[test]
    fn memory_pressure_drains_preemptively_and_lowers_the_low_watermark() {
        let active = ActiveConfig::new(4, 4, 1);
        let accountant = Arc::new(MemoryAccountant::new(1000));
        active.attach_accountant(Arc::clone(&accountant));
        let low0 = accountant.low();
        let mut s = state(2, 0);
        // Resident at 95% of budget: urgent, bypasses hysteresis.
        let pressured = sample_for(
            DiagInputs {
                wall_us: 1_000_000,
                budget_bytes: 1000,
                resident_bytes: 950,
                ..DiagInputs::default()
            },
            0,
        );
        let acted = s.tick(&pressured, &active);
        assert!(acted.iter().any(|(_, knob, _)| *knob == "drain"), "first tick already drains");
        assert!(active.take_drain());
        assert!(accountant.low() < low0, "low watermark lowered");
        assert!(accountant.low() >= 1000 / 8, "but floored at budget/8");
    }

    #[test]
    fn reduce_bound_raises_reduce_width_to_the_cap() {
        let active = ActiveConfig::new(4, 4, 1);
        let mut s = state(1, 0);
        // merge/wall = 0.5 -> reduce/merge-bound.
        let merge_bound = sample_for(
            DiagInputs { wall_us: 1_000_000, merge_us: 500_000, ..DiagInputs::default() },
            0,
        );
        for _ in 0..20 {
            s.tick(&merge_bound, &active);
        }
        assert_eq!(active.reduce_width(), 8, "capped at the pool size");
    }

    #[test]
    fn balanced_ticks_leave_every_knob_alone() {
        let active = ActiveConfig::new(4, 4, 2);
        let mut s = state(1, 0);
        for _ in 0..10 {
            assert!(s.tick(&balanced(), &active).is_empty());
        }
        assert_eq!(active.map_width(), 4);
        assert_eq!(active.reduce_width(), 4);
        assert_eq!(active.prefetch_depth(), 2);
        assert_eq!(active.shard_mask(), 0);
    }

    #[test]
    fn action_log_is_bounded() {
        let a = ActiveConfig::new(1, 1, 1);
        for i in 0..(MAX_ACTIONS as u64 + 50) {
            a.record("balanced", "map_width", i);
        }
        let (log, dropped) = a.take_log();
        assert_eq!(log.len(), MAX_ACTIONS);
        assert_eq!(dropped, 50);
    }

    #[test]
    fn governor_report_renders_the_v1_schema() {
        let report = GovernorReport {
            interval_ms: 50,
            ticks: 7,
            actions: vec![ActionRecord {
                t_us: 123,
                verdict: "ingest-bound",
                knob: "map_width",
                value: 3,
            }],
            dropped_actions: 0,
            verdicts: vec![("ingest-bound".to_string(), 5), ("balanced".to_string(), 2)],
            final_map_width: 3,
            final_reduce_width: 4,
            final_prefetch_depth: 2,
            final_shard_mask: 1,
        };
        let text = report.to_json().render();
        assert!(text.contains("\"schema\":\"supmr.governor.v1\""));
        assert!(text.contains("\"knob\":\"map_width\""));
        assert!(text.contains("\"ingest-bound\":5"));
        assert!(text.contains("\"final\":{\"map_width\":3"));
    }

    mod determinism {
        //! The governor's safety argument, property-tested: every knob
        //! changes only scheduling widths, buffer depths, lock-sweep
        //! order, or spill timing — never key→partition placement — so
        //! ANY mid-job action sequence yields byte-identical output.

        use super::super::ActiveConfig;
        use crate::api::{Emit, MapReduce};
        use crate::chunk::Chunking;
        use crate::combiner::Sum;
        use crate::container::HashContainer;
        use crate::runtime::{Input, Job, JobConfig, MergeMode};
        use crate::spill::PairCodec;
        use proptest::prelude::*;
        use std::collections::VecDeque;
        use std::sync::Arc;
        use supmr_metrics::TraceLevel;
        use supmr_storage::MemSource;

        struct SpillingWordCount;

        impl MapReduce for SpillingWordCount {
            type Key = String;
            type Value = u64;
            type Combiner = Sum;
            type Output = u64;
            type Container = HashContainer<String, u64, Sum>;

            fn make_container(&self) -> Self::Container {
                HashContainer::default()
            }

            fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
                for word in split.split(|b| b.is_ascii_whitespace()) {
                    if !word.is_empty() {
                        emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
                    }
                }
            }

            fn reduce(&self, _k: &String, acc: u64) -> u64 {
                acc
            }

            fn spill_codec(&self) -> Option<PairCodec<String, u64>> {
                fn encode(key: &String, count: &u64, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
                    buf.extend_from_slice(key.as_bytes());
                    buf.extend_from_slice(&count.to_le_bytes());
                }
                fn decode(rec: &[u8]) -> Option<(String, u64)> {
                    let klen = u32::from_le_bytes(rec.get(..4)?.try_into().ok()?) as usize;
                    let key = String::from_utf8(rec.get(4..4 + klen)?.to_vec()).ok()?;
                    let count =
                        u64::from_le_bytes(rec.get(4 + klen..4 + klen + 8)?.try_into().ok()?);
                    (rec.len() == 4 + klen + 8).then_some((key, count))
                }
                #[allow(clippy::ptr_arg)] // `&String` is PairCodec's fn-pointer shape
                fn size_hint(key: &String, _count: &u64) -> usize {
                    std::mem::size_of::<String>() + key.len() + 8
                }
                Some(PairCodec { encode, decode, size_hint })
            }
        }

        fn corpus() -> Vec<u8> {
            let mut text = Vec::new();
            for i in 0..1200u32 {
                text.extend_from_slice(format!("word{} common tail\n", i % 97).as_bytes());
            }
            text
        }

        /// One generated mid-job actuation: (knob selector, raw value).
        type Action = (u8, u64);

        fn apply(active: &ActiveConfig, (knob, value): Action) {
            match knob {
                0 => active.set_map_width(1 + (value % 4) as usize),
                1 => active.set_reduce_width(1 + (value % 6) as usize),
                2 => active.set_prefetch_depth(1 + (value % 8) as usize),
                3 => active.set_shard_mask(value & 63),
                4 => {
                    active.request_drain();
                    if let Some(acct) = active.accountant() {
                        acct.set_low((acct.low() / 2).max(1));
                    }
                }
                _ => unreachable!("knob selector is generated modulo 5"),
            }
        }

        fn run_wordcount(actions: Option<Vec<Action>>) -> Vec<(String, u64)> {
            let mut config = JobConfig {
                map_workers: 4,
                reduce_workers: 4,
                split_bytes: 128,
                chunking: Chunking::Inter { chunk_bytes: 512 },
                merge: MergeMode::PWay { ways: 2 },
                hash_seed: Some(7),
                memory_budget: Some(4 * 1024),
                ..JobConfig::default()
            };
            let mut callback = None;
            if let Some(actions) = actions {
                let active = Arc::new(ActiveConfig::new(4, 4, 1));
                config.active = Some(Arc::clone(&active));
                config.trace = TraceLevel::Wave;
                let queue = parking_lot::Mutex::new(VecDeque::from(actions));
                // One generated actuation per trace event: the sequence
                // lands at arbitrary points of the job's execution.
                callback = Some(move |_event: &supmr_metrics::TraceEvent| {
                    if let Some(action) = queue.lock().pop_front() {
                        apply(&active, action);
                    }
                });
            }
            let mut job = Job::new(SpillingWordCount).config(config);
            if let Some(callback) = callback {
                job = job.on_event(callback);
            }
            let result = job.run(Input::stream(MemSource::from(corpus()))).expect("wordcount runs");
            result.sorted_pairs()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(6))]
            #[test]
            fn any_action_sequence_preserves_output(
                actions in proptest::collection::vec((0u8..5, 0u64..64), 0..24),
            ) {
                let fixed = run_wordcount(None);
                let governed = run_wordcount(Some(actions));
                prop_assert_eq!(fixed, governed);
            }
        }
    }

    #[test]
    fn spawned_governor_ticks_and_stops() {
        let registry = Registry::new();
        let active = Arc::new(ActiveConfig::new(4, 4, 1));
        let runtime = GovernorRuntime::spawn(
            GovernorConfig { interval: Duration::from_millis(1), ..GovernorConfig::default() },
            registry.clone(),
            Arc::clone(&active),
            Tracer::off(),
            GovernorLimits { map_base: 4, reduce_cap: 4 },
        );
        std::thread::sleep(Duration::from_millis(30));
        let report = runtime.stop();
        assert!(report.ticks > 0, "the thread must have sampled");
        assert_eq!(report.interval_ms, 1);
        let snap = registry.snapshot();
        assert!(
            snap.entries.iter().any(|e| e.name == "supmr.governor.ticks"),
            "governor families registered"
        );
    }
}
