//! Inline-small byte keys and zero-copy emission ([`CompactKey`],
//! [`ByteKey`]).
//!
//! The map side of a text workload is dominated by short keys — words,
//! patterns, index terms. Representing each as a fresh heap `String`
//! (the pre-PR-6 path: `String::from_utf8_lossy(word).into_owned()` per
//! token) makes the allocator the hot path. [`CompactKey`] is the
//! allocation-hardened replacement: keys up to [`CompactKey::INLINE_CAP`]
//! bytes live inline in the 24-byte key value itself (the same size as a
//! `String` header), and only longer keys spill to one boxed slice.
//!
//! [`ByteKey`] is the contract that lets the emit path defer even that:
//! a map task hands [`Emit::emit_bytes`](crate::api::Emit::emit_bytes) a
//! *borrowed* slice of the ingest chunk, the container probes its table
//! with the borrowed bytes, and an owned key materializes only on the
//! first insert of each distinct key — a vocabulary-sized number of
//! constructions instead of a token-count-sized one.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum key length stored inline (no heap allocation).
const INLINE_CAP: usize = 22;

/// A byte-string key that stores short keys inline.
///
/// Layout is one byte of discriminant + length, 22 inline payload bytes
/// (or a boxed slice for longer keys) — 24 bytes total, matching
/// `String`'s pointer/len/capacity header, so swapping key types never
/// grows the container's cells.
///
/// Ordering, equality, and hashing are all over the raw bytes;
/// `Ord`/`Hash` agree with `String`'s for valid-ASCII content (see the
/// equivalence property tests), so merge order and shard placement are
/// unchanged from the `String`-keyed implementation.
#[derive(Clone)]
pub enum CompactKey {
    /// Up to [`CompactKey::INLINE_CAP`] bytes stored in place.
    Inline {
        /// Number of payload bytes in `buf`.
        len: u8,
        /// Inline payload storage; bytes past `len` are zero.
        buf: [u8; INLINE_CAP],
    },
    /// Longer keys spill to one exact-size heap allocation.
    Heap(Box<[u8]>),
}

impl CompactKey {
    /// Longest key representable without a heap allocation.
    pub const INLINE_CAP: usize = INLINE_CAP;

    /// Build a key from raw bytes, inlining when they fit.
    #[inline]
    pub fn from_bytes(bytes: &[u8]) -> CompactKey {
        if bytes.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..bytes.len()].copy_from_slice(bytes);
            CompactKey::Inline { len: bytes.len() as u8, buf }
        } else {
            CompactKey::Heap(bytes.into())
        }
    }

    /// The key's bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            CompactKey::Inline { len, buf } => &buf[..*len as usize],
            CompactKey::Heap(b) => b,
        }
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this key required a heap allocation.
    pub fn is_heap(&self) -> bool {
        matches!(self, CompactKey::Heap(_))
    }

    /// Heap bytes owned beyond the inline cell itself (0 when inline) —
    /// the input to spill size accounting.
    pub fn heap_bytes(&self) -> usize {
        match self {
            CompactKey::Inline { .. } => 0,
            CompactKey::Heap(b) => b.len(),
        }
    }

    /// The key as UTF-8 text (tokenizers in this workspace only emit
    /// ASCII, so display paths use this; invalid bytes are replaced).
    pub fn to_string_lossy(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(self.as_bytes())
    }
}

/// Length check + word-at-a-time compare, fully inlined. Slice `==`
/// lowers to a `bcmp` libcall for runtime lengths; at one compare per
/// probe on the emit hot path, the call overhead alone would dwarf the
/// few bytes of a typical token, so keys compare through this instead.
#[inline]
fn bytes_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let n = a.len();
    if n >= 8 {
        let mut i = 0;
        while i + 8 <= n {
            let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte window"));
            let y = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte window"));
            if x != y {
                return false;
            }
            i += 8;
        }
        // Final (possibly overlapping) word covers the tail without a
        // serial byte loop.
        let x = u64::from_le_bytes(a[n - 8..].try_into().expect("8-byte window"));
        let y = u64::from_le_bytes(b[n - 8..].try_into().expect("8-byte window"));
        x == y
    } else if n >= 4 {
        let xl = u32::from_le_bytes(a[..4].try_into().expect("4-byte window"));
        let yl = u32::from_le_bytes(b[..4].try_into().expect("4-byte window"));
        let xh = u32::from_le_bytes(a[n - 4..].try_into().expect("4-byte window"));
        let yh = u32::from_le_bytes(b[n - 4..].try_into().expect("4-byte window"));
        ((xl ^ yl) | (xh ^ yh)) == 0
    } else if n > 0 {
        // 1-3 bytes: first, middle, and last byte cover every position.
        let x = (a[0], a[n / 2], a[n - 1]);
        let y = (b[0], b[n / 2], b[n - 1]);
        x == y
    } else {
        true
    }
}

impl PartialEq for CompactKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        bytes_eq(self.as_bytes(), other.as_bytes())
    }
}

impl Eq for CompactKey {}

impl PartialOrd for CompactKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompactKey {
    /// Lexicographic byte order — identical to `str` order for ASCII
    /// (and to `str` order for any UTF-8, since UTF-8 sorts bytewise).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl Hash for CompactKey {
    /// Mirrors `str`'s hash (`write(bytes)` + a `0xFF` terminator), so a
    /// seeded build hasher places a `CompactKey` in the same shard as
    /// the equal `String` — guarded by an equivalence test against
    /// libstd drift.
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write(self.as_bytes());
        state.write_u8(0xff);
    }
}

impl fmt::Debug for CompactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompactKey({:?})", self.to_string_lossy())
    }
}

impl fmt::Display for CompactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_lossy())
    }
}

impl Default for CompactKey {
    /// The empty key, inline.
    fn default() -> Self {
        CompactKey::from_bytes(&[])
    }
}

impl PartialEq<str> for CompactKey {
    fn eq(&self, other: &str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<&str> for CompactKey {
    fn eq(&self, other: &&str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<[u8]> for CompactKey {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_bytes() == other
    }
}

impl From<&[u8]> for CompactKey {
    fn from(bytes: &[u8]) -> Self {
        CompactKey::from_bytes(bytes)
    }
}

impl From<&str> for CompactKey {
    fn from(s: &str) -> Self {
        CompactKey::from_bytes(s.as_bytes())
    }
}

/// A key constructible from (and comparable against) a borrowed byte
/// slice, with a hash that can be computed from the slice alone.
///
/// This is what makes the zero-copy emit path
/// ([`Emit::emit_bytes`](crate::api::Emit::emit_bytes)) possible: the
/// container hashes and probes with the borrowed bytes, calls
/// [`ByteKey::from_bytes`] only on first insert, and trusts that
/// [`ByteKey::write_bytes`] feeds a hasher the exact byte sequence the
/// key's own [`Hash`] impl would — the invariant the `CompactKey` /
/// `String` equivalence property tests pin down.
pub trait ByteKey: Hash + Eq {
    /// Materialize an owned key from its bytes.
    fn from_bytes(bytes: &[u8]) -> Self;

    /// The key's bytes (must round-trip through [`ByteKey::from_bytes`]).
    fn as_bytes(&self) -> &[u8];

    /// Feed `hasher` exactly what `Self::from_bytes(bytes).hash(hasher)`
    /// would, without materializing the key.
    fn write_bytes<H: Hasher>(bytes: &[u8], hasher: &mut H);

    /// Whether materializing `bytes` heap-allocates (feeds the
    /// `supmr.map.alloc_spills` counter).
    fn spills(bytes: &[u8]) -> bool;

    /// Borrowed-probe equality: must agree with
    /// `*self == Self::from_bytes(bytes)`. The default routes through
    /// the inlined word-at-a-time compare rather than slice `==` (a
    /// `bcmp` libcall), since this runs once per emit-path probe.
    #[inline]
    fn eq_bytes(&self, bytes: &[u8]) -> bool {
        bytes_eq(self.as_bytes(), bytes)
    }
}

impl ByteKey for CompactKey {
    #[inline]
    fn from_bytes(bytes: &[u8]) -> Self {
        CompactKey::from_bytes(bytes)
    }

    #[inline]
    fn as_bytes(&self) -> &[u8] {
        self.as_bytes()
    }

    #[inline]
    fn write_bytes<H: Hasher>(bytes: &[u8], hasher: &mut H) {
        hasher.write(bytes);
        hasher.write_u8(0xff);
    }

    #[inline]
    fn spills(bytes: &[u8]) -> bool {
        bytes.len() > INLINE_CAP
    }
}

impl ByteKey for String {
    /// Tokenizers in this workspace only emit ASCII slices, for which
    /// `from_utf8_lossy` is the identity; invalid UTF-8 is replaced,
    /// matching the historical `String`-keyed emit path byte for byte.
    fn from_bytes(bytes: &[u8]) -> Self {
        String::from_utf8_lossy(bytes).into_owned()
    }

    fn as_bytes(&self) -> &[u8] {
        str::as_bytes(self)
    }

    /// `str` hashes as `write(bytes)` + `write_u8(0xff)`; asserted
    /// against libstd in `string_hash_contract_matches_libstd`.
    fn write_bytes<H: Hasher>(bytes: &[u8], hasher: &mut H) {
        hasher.write(bytes);
        hasher.write_u8(0xff);
    }

    fn spills(_bytes: &[u8]) -> bool {
        true // every String key is a heap allocation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::RandomState;
    use std::hash::BuildHasher;

    #[test]
    fn inline_and_heap_round_trip() {
        for len in [0, 1, 21, 22, 23, 64, 300] {
            let bytes: Vec<u8> = (0..len as u32).map(|i| (i % 251) as u8).collect();
            let k = CompactKey::from_bytes(&bytes);
            assert_eq!(k.as_bytes(), &bytes[..]);
            assert_eq!(k.len(), len);
            assert_eq!(k.is_heap(), len > CompactKey::INLINE_CAP);
            assert_eq!(k.heap_bytes(), if len > CompactKey::INLINE_CAP { len } else { 0 });
            assert_eq!(k, k.clone());
        }
    }

    #[test]
    fn value_stays_string_header_sized() {
        assert_eq!(
            std::mem::size_of::<CompactKey>(),
            std::mem::size_of::<String>(),
            "CompactKey must not grow container cells"
        );
    }

    #[test]
    fn ordering_matches_str_ordering() {
        let words = ["", "a", "ab", "abc", "b", "zz", "a-very-long-key-beyond-the-inline-cap"];
        for x in words {
            for y in words {
                assert_eq!(
                    CompactKey::from(x).cmp(&CompactKey::from(y)),
                    x.cmp(y),
                    "{x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn string_hash_contract_matches_libstd() {
        // ByteKey::write_bytes must mirror libstd's str hashing exactly,
        // or CompactKey and String keys would shard differently. This
        // is the drift guard: if libstd ever changes str's hash layout,
        // this test fails loudly.
        let state = RandomState::new();
        for s in ["", "a", "word", "a somewhat longer key that heap-spills the inline cap"] {
            let direct = state.hash_one(s);
            let mut h = state.build_hasher();
            <String as ByteKey>::write_bytes(s.as_bytes(), &mut h);
            assert_eq!(h.finish(), direct, "libstd str hash drifted for {s:?}");
            let mut h = state.build_hasher();
            <CompactKey as ByteKey>::write_bytes(s.as_bytes(), &mut h);
            assert_eq!(h.finish(), state.hash_one(CompactKey::from(s)));
        }
    }

    #[test]
    fn compact_and_string_hash_identically() {
        let state = RandomState::new();
        for s in ["", "x", "hello", "the quick brown fox jumps over the lazy dog"] {
            assert_eq!(
                state.hash_one(CompactKey::from(s)),
                state.hash_one(s.to_string()),
                "hash mismatch for {s:?}"
            );
        }
    }

    #[test]
    fn display_and_debug_render_text() {
        let k = CompactKey::from("word");
        assert_eq!(format!("{k}"), "word");
        assert_eq!(format!("{k:?}"), "CompactKey(\"word\")");
    }
}
