//! The array container: dense `usize` keys into a fixed-size array.

use super::Container;
use crate::api::Emit;
use crate::combiner::Combiner;
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Phoenix++-style array container for jobs whose keys form a small dense
/// integer universe known up front (histogram buckets, matrix indices,
/// regression coefficients). Insert-time combining into a fixed slot
/// array; no hashing, no growth.
pub struct ArrayContainer<V, C: Combiner<V>> {
    slots: Mutex<Vec<Option<C::Acc>>>,
    size: usize,
    pairs: AtomicU64,
    _marker: PhantomData<fn(V)>,
}

impl<V, C: Combiner<V>> ArrayContainer<V, C> {
    /// A container with `size` key slots (valid keys are `0..size`).
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "array container needs at least one slot");
        ArrayContainer {
            slots: Mutex::new(vec![None; size]),
            size,
            pairs: AtomicU64::new(0),
            _marker: PhantomData,
        }
    }

    /// The key-universe size.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// Thread-local dense accumulator array.
pub struct LocalArray<V, C: Combiner<V>> {
    slots: Vec<Option<C::Acc>>,
    emitted: u64,
    _marker: PhantomData<fn(V)>,
}

impl<V, C: Combiner<V>> Emit<usize, V> for LocalArray<V, C> {
    /// # Panics
    /// Panics if `key` is outside the container's universe — emitting an
    /// out-of-range histogram bucket is an application bug, not data.
    fn emit(&mut self, key: usize, value: V) {
        self.emitted += 1;
        let slot = &mut self.slots[key];
        match slot {
            Some(acc) => C::fold(acc, value),
            None => *slot = Some(C::unit(value)),
        }
    }
}

/// One contiguous slot range, carrying the index of its first slot so
/// draining can reconstruct the dense keys.
pub struct ArrayDrain<A> {
    base: usize,
    slots: Vec<Option<A>>,
}

impl<V, C> Container<usize, V, C> for ArrayContainer<V, C>
where
    V: Clone + Send + Sync + 'static,
    C: Combiner<V>,
{
    type Local = LocalArray<V, C>;
    type Drain = ArrayDrain<C::Acc>;

    fn local(&self) -> Self::Local {
        LocalArray { slots: vec![None; self.size], emitted: 0, _marker: PhantomData }
    }

    fn absorb(&self, local: Self::Local) {
        self.pairs.fetch_add(local.emitted, Ordering::Relaxed);
        let mut global = self.slots.lock();
        for (i, acc) in local.slots.into_iter().enumerate() {
            if let Some(acc) = acc {
                match &mut global[i] {
                    Some(g) => C::merge(g, acc),
                    empty => *empty = Some(acc),
                }
            }
        }
    }

    fn distinct_keys(&self) -> usize {
        self.slots.lock().iter().filter(|s| s.is_some()).count()
    }

    fn total_pairs(&self) -> u64 {
        self.pairs.load(Ordering::Relaxed)
    }

    /// Splits the slot array into at most `parts` contiguous index
    /// ranges (so partitions stay key-ordered end to end); ranges with
    /// no occupied slot are dropped.
    fn into_drains(self, parts: usize) -> Vec<Self::Drain> {
        let slots = self.slots.into_inner();
        let parts = parts.clamp(1, self.size);
        let per = self.size.div_ceil(parts);
        let mut drains = Vec::with_capacity(parts);
        let mut rest = slots;
        let mut base = 0;
        while !rest.is_empty() {
            let tail = rest.split_off(per.min(rest.len()));
            if rest.iter().any(Option::is_some) {
                drains.push(ArrayDrain { base, slots: rest });
            }
            base += per;
            rest = tail;
        }
        drains
    }

    fn drain(payload: Self::Drain) -> Vec<(usize, C::Acc)> {
        payload
            .slots
            .into_iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|acc| (payload.base + i, acc)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::{Count, Sum};

    #[test]
    fn histogram_style_counting() {
        let c: ArrayContainer<u8, Count> = ArrayContainer::new(4);
        let mut local = c.local();
        for byte in [0u8, 1, 1, 3, 3, 3] {
            local.emit(byte as usize, byte);
        }
        c.absorb(local);
        assert_eq!(c.total_pairs(), 6);
        assert_eq!(c.distinct_keys(), 3);
        let all: Vec<(usize, u64)> = c.into_partitions(2).into_iter().flatten().collect();
        assert_eq!(all, vec![(0, 1), (1, 2), (3, 3)]);
    }

    #[test]
    fn partitions_are_index_ordered() {
        let c: ArrayContainer<u64, Sum> = ArrayContainer::new(100);
        let mut local = c.local();
        for i in (0..100).rev() {
            local.emit(i, i as u64);
        }
        c.absorb(local);
        let parts = c.into_partitions(4);
        assert_eq!(parts.len(), 4);
        let flat: Vec<usize> = parts.iter().flatten().map(|(i, _)| *i).collect();
        let sorted: Vec<usize> = (0..100).collect();
        assert_eq!(flat, sorted, "array partitions must come out key-ordered");
    }

    #[test]
    fn cross_task_merging() {
        let c: ArrayContainer<u64, Sum> = ArrayContainer::new(2);
        for _ in 0..3 {
            let mut l = c.local();
            l.emit(1, 5);
            c.absorb(l);
        }
        let all: Vec<(usize, u64)> = c.into_partitions(1).into_iter().flatten().collect();
        assert_eq!(all, vec![(1, 15)]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_key_panics() {
        let c: ArrayContainer<u64, Sum> = ArrayContainer::new(2);
        let mut l = c.local();
        l.emit(2, 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_size_rejected() {
        let _: ArrayContainer<u64, Sum> = ArrayContainer::new(0);
    }

    #[test]
    fn empty_container() {
        let c: ArrayContainer<u64, Sum> = ArrayContainer::new(16);
        assert_eq!(c.size(), 16);
        assert_eq!(c.distinct_keys(), 0);
        assert!(c.into_partitions(3).is_empty());
    }

    #[test]
    fn sparse_occupancy_drops_empty_ranges() {
        let c: ArrayContainer<u64, Sum> = ArrayContainer::new(64);
        let mut local = c.local();
        local.emit(0, 7);
        local.emit(63, 9);
        c.absorb(local);
        let parts = c.into_partitions(8);
        assert_eq!(parts.len(), 2, "only the first and last slot ranges are occupied");
        let flat: Vec<(usize, u64)> = parts.into_iter().flatten().collect();
        assert_eq!(flat, vec![(0, 7), (63, 9)]);
    }
}
