//! The hash container: keys hash to cells, values combine at insert.

use super::{chunk_into, Container};
use crate::api::Emit;
use crate::combiner::Combiner;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of lock shards in the global table. Larger than any realistic
/// worker count so absorbs rarely contend.
const SHARDS: usize = 64;

/// Phoenix++-style hash container.
///
/// Each map task combines into a private `HashMap`; task completion
/// merges that map into a sharded global table. The reduce phase drains
/// the shards into partitions.
pub struct HashContainer<K, V, C>
where
    K: Eq + Hash,
    C: Combiner<V>,
{
    shards: Vec<Mutex<HashMap<K, C::Acc>>>,
    hasher: RandomState,
    pairs: AtomicU64,
    _marker: PhantomData<fn(V)>,
}

impl<K, V, C> Default for HashContainer<K, V, C>
where
    K: Eq + Hash,
    C: Combiner<V>,
{
    fn default() -> Self {
        HashContainer {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            pairs: AtomicU64::new(0),
            _marker: PhantomData,
        }
    }
}

impl<K, V, C> HashContainer<K, V, C>
where
    K: Eq + Hash,
    C: Combiner<V>,
{
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_for(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) % SHARDS as u64) as usize
    }
}

/// Thread-local insert handle: a private map with insert-time combining.
pub struct LocalHash<K, V, C: Combiner<V>> {
    map: HashMap<K, C::Acc>,
    emitted: u64,
    _marker: PhantomData<fn(V)>,
}

impl<K, V, C> Emit<K, V> for LocalHash<K, V, C>
where
    K: Eq + Hash,
    C: Combiner<V>,
{
    fn emit(&mut self, key: K, value: V) {
        self.emitted += 1;
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                C::fold(e.get_mut(), value);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(C::unit(value));
            }
        }
    }
}

impl<K, V, C> Container<K, V, C> for HashContainer<K, V, C>
where
    K: Ord + Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    C: Combiner<V>,
{
    type Local = LocalHash<K, V, C>;

    fn local(&self) -> Self::Local {
        LocalHash { map: HashMap::new(), emitted: 0, _marker: PhantomData }
    }

    fn absorb(&self, local: Self::Local) {
        self.pairs.fetch_add(local.emitted, Ordering::Relaxed);
        for (k, acc) in local.map {
            let shard = self.shard_for(&k);
            let mut guard = self.shards[shard].lock();
            match guard.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    C::merge(e.get_mut(), acc);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(acc);
                }
            }
        }
    }

    fn distinct_keys(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn total_pairs(&self) -> u64 {
        self.pairs.load(Ordering::Relaxed)
    }

    fn into_partitions(self, parts: usize) -> Vec<Vec<(K, C::Acc)>> {
        let mut all: Vec<(K, C::Acc)> = Vec::new();
        for shard in self.shards {
            all.extend(shard.into_inner());
        }
        chunk_into(all, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::{Buffer, Sum};

    type WC = HashContainer<String, u64, Sum>;

    #[test]
    fn local_combining_shrinks_pairs() {
        let c = WC::new();
        let mut local = c.local();
        for _ in 0..100 {
            local.emit("the".to_string(), 1);
        }
        local.emit("word".to_string(), 1);
        c.absorb(local);
        assert_eq!(c.total_pairs(), 101);
        assert_eq!(c.distinct_keys(), 2);
        let parts = c.into_partitions(4);
        let mut all: Vec<(String, u64)> = parts.into_iter().flatten().collect();
        all.sort();
        assert_eq!(all, vec![("the".to_string(), 100), ("word".to_string(), 1)]);
    }

    #[test]
    fn cross_task_merge_by_key() {
        let c = WC::new();
        for _ in 0..8 {
            let mut local = c.local();
            local.emit("k".to_string(), 2);
            c.absorb(local);
        }
        let all: Vec<(String, u64)> = c.into_partitions(3).into_iter().flatten().collect();
        assert_eq!(all, vec![("k".to_string(), 16)]);
    }

    #[test]
    fn partition_count_is_bounded_and_covering() {
        let c = WC::new();
        let mut local = c.local();
        for i in 0..1000 {
            local.emit(format!("key{i}"), 1);
        }
        c.absorb(local);
        let parts = c.into_partitions(7);
        assert!(parts.len() <= 7);
        assert!(!parts.iter().any(Vec::is_empty));
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn empty_container_has_no_partitions() {
        let c = WC::new();
        assert_eq!(c.distinct_keys(), 0);
        assert_eq!(c.total_pairs(), 0);
        assert!(c.into_partitions(4).is_empty());
    }

    #[test]
    fn buffer_combiner_collects_values() {
        let c: HashContainer<u32, &'static str, Buffer> = HashContainer::new();
        let mut a = c.local();
        a.emit(1, "x");
        a.emit(1, "y");
        c.absorb(a);
        let mut b = c.local();
        b.emit(1, "z");
        c.absorb(b);
        let all: Vec<(u32, Vec<&str>)> = c.into_partitions(1).into_iter().flatten().collect();
        assert_eq!(all.len(), 1);
        let mut vals = all[0].1.clone();
        vals.sort();
        assert_eq!(vals, vec!["x", "y", "z"]);
    }

    #[test]
    fn concurrent_absorbs_are_consistent() {
        let c = std::sync::Arc::new(WC::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    let mut local = c.local();
                    for i in 0..500 {
                        local.emit(format!("key{}", i % 50), 1);
                        local.emit(format!("t{t}-{i}"), 1);
                    }
                    c.absorb(local);
                });
            }
        });
        let c = std::sync::Arc::into_inner(c).unwrap();
        assert_eq!(c.total_pairs(), 8 * 1000);
        assert_eq!(c.distinct_keys(), 50 + 8 * 500);
        let all: Vec<(String, u64)> = c.into_partitions(4).into_iter().flatten().collect();
        let shared: u64 = all.iter().filter(|(k, _)| k.starts_with("key")).map(|(_, v)| v).sum();
        assert_eq!(shared, 8 * 500);
    }
}
