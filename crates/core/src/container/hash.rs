//! The hash container: keys hash to cells, values combine at insert.
//!
//! The shuffle path hashes each key **exactly once**: a local emit
//! computes the key's Fx hash ([`FxSeededState`]), stores it beside the
//! key, and every later step reuses it — the high bits pick the shard
//! (power-of-two mask), the shard map keys on the stored value through a
//! passthrough hasher, and the drain unwraps without rehashing. Absorbs
//! are batched: the local map is grouped by destination shard first,
//! then each shard lock is taken once per task instead of once per key.
//! Shards are hash-prefix partitions, so draining partition `p` is the
//! concatenation of a contiguous shard range — no re-bucketing.

use super::fast_hash::{FxSeededState, PassthroughState, SeedableBuildHasher};
use super::local_table::{Entry, LocalTable};
use super::{Container, ContainerHooks, ContainerMetrics};
use crate::api::Emit;
use crate::combiner::Combiner;
use crate::key::ByteKey;
use crate::runtime::ActiveConfig;
use crate::spill::SpillHooks;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Lock shards in the global table; must stay a power of two (shard
/// index is a mask over the hash's high bits). Larger than any
/// realistic worker count so absorbs rarely contend, and enough
/// hash-prefix granularity to feed up to 64 reduce partitions.
const SHARDS: usize = 64;
/// log₂([`SHARDS`]).
const SHARD_BITS: u32 = SHARDS.trailing_zeros();

/// Shard index from a key hash: the high [`SHARD_BITS`] bits, masked —
/// never a modulo. High bits are the best-mixed bits of an Fx hash
/// (carries propagate upward through the multiply).
#[inline]
fn shard_of(hash: u64) -> usize {
    ((hash >> (64 - SHARD_BITS)) as usize) & (SHARDS - 1)
}

/// Reduce partition a shard belongs to — the inverse of the contiguous
/// ranges [`Container::into_drains`] hands out: with `p` the largest
/// power of two ≤ `parts`, partition = shard / (64/p). Spilled runs are
/// tagged with this so they meet their in-memory remainder at merge.
fn partition_of(shard: usize, parts: usize) -> usize {
    let p = 1usize << parts.clamp(1, SHARDS).ilog2();
    shard / (SHARDS / p)
}

/// A key carrying its hash, computed once at emit time. Equality is on
/// the key (hash equality is implied); hashing writes the stored value
/// for [`PassthroughState`] maps.
struct Prehashed<K> {
    hash: u64,
    key: K,
}

impl<K: Eq> PartialEq for Prehashed<K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<K: Eq> Eq for Prehashed<K> {}

impl<K> Hash for Prehashed<K> {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

type Shard<K, A> = HashMap<Prehashed<K>, A, PassthroughState>;

/// Phoenix++-style hash container.
///
/// Each map task combines into a private map; task completion merges
/// that map into a sharded global table, shard-batched. The reduce
/// phase drains contiguous shard ranges as hash-prefix partitions.
///
/// `S` is the key hasher — [`FxSeededState`] by default; tests inject
/// instrumented states through [`HashContainer::with_hasher`].
pub struct HashContainer<K, V, C, S = FxSeededState>
where
    K: Eq + Hash,
    C: Combiner<V>,
    S: BuildHasher,
{
    shards: Vec<Mutex<Shard<K, C::Acc>>>,
    state: Mutex<S>,
    metrics: Mutex<Option<Arc<ContainerMetrics>>>,
    pairs: AtomicU64,
    /// Out-of-core wiring, set once via [`Container::configure_spill`]
    /// when the job runs under a memory budget; `None` leaves absorb on
    /// the unmetered hot path.
    spill: Mutex<Option<SpillHooks<K, C::Acc>>>,
    /// Estimated resident bytes per shard (vacant-insert size hints),
    /// maintained only while spilling is configured. The hottest shard
    /// by this estimate is the spill victim.
    shard_bytes: Vec<AtomicU64>,
    /// Single-spiller token: absorbs that find the ledger over budget
    /// while another thread is already draining just keep going.
    spilling: Mutex<()>,
    /// High-water mark of absorbed local-table sizes. New locals
    /// pre-size to it, so steady-state map tasks (same split size, same
    /// vocabulary) skip the whole grow-and-rehash cascade.
    local_hint: AtomicUsize,
    /// Absorb counter feeding the lock-sweep rotation: under a governor
    /// with a widened shard mask, concurrent absorbs start their sweep
    /// at different shards so their first lock acquisitions spread out.
    sweep: AtomicU64,
    /// The governor's dynamic knobs, when the job runs adaptively.
    active: Mutex<Option<Arc<ActiveConfig>>>,
    _marker: PhantomData<fn(V)>,
}

impl<K, V, C, S> Default for HashContainer<K, V, C, S>
where
    K: Eq + Hash,
    C: Combiner<V>,
    S: BuildHasher + Default,
{
    fn default() -> Self {
        Self::with_hasher(S::default())
    }
}

impl<K, V, C, S> HashContainer<K, V, C, S>
where
    K: Eq + Hash,
    C: Combiner<V>,
    S: BuildHasher,
{
    /// An empty container (random hash seed).
    pub fn new() -> Self
    where
        S: Default,
    {
        Self::default()
    }

    /// An empty container keyed by an explicit build hasher.
    pub fn with_hasher(state: S) -> Self {
        HashContainer {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            state: Mutex::new(state),
            metrics: Mutex::new(None),
            pairs: AtomicU64::new(0),
            spill: Mutex::new(None),
            shard_bytes: (0..SHARDS).map(|_| AtomicU64::new(0)).collect(),
            spilling: Mutex::new(()),
            local_hint: AtomicUsize::new(0),
            sweep: AtomicU64::new(0),
            active: Mutex::new(None),
            _marker: PhantomData,
        }
    }

    /// Drain hottest shards into spill runs until the ledger is below
    /// its low watermark. At most one thread spills at a time; the
    /// estimate is swapped out *before* the shard map is taken, so keys
    /// racing in between are still charged (the ledger over-counts
    /// rather than leaks).
    fn spill_down(&self, hooks: &SpillHooks<K, C::Acc>) {
        let Some(_token) = self.spilling.try_lock() else { return };
        while hooks.accountant.over_low() {
            let victim = self
                .shard_bytes
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .enumerate()
                .max_by_key(|&(_, bytes)| bytes);
            let Some((idx, est)) = victim else { break };
            if est == 0 {
                break; // every shard already drained; remainder is local maps
            }
            let est = self.shard_bytes[idx].swap(0, Ordering::Relaxed);
            let map = std::mem::take(&mut *self.shards[idx].lock());
            if !map.is_empty() {
                let pairs: Vec<(K, C::Acc)> =
                    map.into_iter().map(|(pk, acc)| (pk.key, acc)).collect();
                (hooks.sink)(partition_of(idx, hooks.partitions), pairs);
            }
            hooks.accountant.release(est);
        }
    }
}

impl<K, V, C> HashContainer<K, V, C>
where
    K: Eq + Hash,
    C: Combiner<V>,
{
    /// An empty container with a fixed hash seed: key→shard placement
    /// (and therefore partition contents) is identical across runs.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_hasher(FxSeededState::with_seed(seed))
    }
}

/// Thread-local insert handle: a private table with insert-time
/// combining. Keys are hashed here, once, and never again.
///
/// The table is an open-addressed [`LocalTable`] rather than a std
/// `HashMap` so the zero-copy emit path can probe with a *borrowed*
/// byte slice: [`Emit::emit_bytes`] hashes the slice through
/// [`ByteKey::write_bytes`], compares against stored keys bytewise, and
/// materializes an owned key only on the first insert of each distinct
/// key — the allocation-hardening half of the SWAR map path.
pub struct LocalHash<K, V, C: Combiner<V>, S = FxSeededState> {
    table: LocalTable<K, C::Acc>,
    state: S,
    emitted: u64,
    /// Borrowed-slice emissions seen (`supmr.map.tokens`).
    tokens: u64,
    /// Borrowed-slice first-inserts that heap-allocated
    /// (`supmr.map.alloc_spills`).
    alloc_spills: u64,
    _marker: PhantomData<fn(V)>,
}

impl<K, V, C, S> Emit<K, V> for LocalHash<K, V, C, S>
where
    K: Eq + Hash,
    C: Combiner<V>,
    S: BuildHasher + Send,
{
    fn emit(&mut self, key: K, value: V) {
        self.emitted += 1;
        let hash = self.state.hash_one(&key);
        match self.table.entry(hash, |k| *k == key) {
            Entry::Occupied(acc) => C::fold(acc, value),
            Entry::Vacant(slot) => slot.insert(key, C::unit(value)),
        }
    }

    fn emit_bytes(&mut self, key: &[u8], value: V)
    where
        K: ByteKey,
    {
        self.emitted += 1;
        self.tokens += 1;
        // One build_hasher call per emission, same as the owned path —
        // the `one_hash_invocation_per_absorbed_key` invariant holds
        // for borrowed emissions too.
        let mut hasher = self.state.build_hasher();
        K::write_bytes(key, &mut hasher);
        let hash = hasher.finish();
        match self.table.entry(hash, |k| k.eq_bytes(key)) {
            Entry::Occupied(acc) => C::fold(acc, value),
            Entry::Vacant(slot) => {
                if K::spills(key) {
                    self.alloc_spills += 1;
                }
                slot.insert(K::from_bytes(key), C::unit(value));
            }
        }
    }
}

/// One hash partition's payload: a contiguous range of shard maps,
/// concatenated (and unwrapped) on a worker by [`Container::drain`].
pub struct HashDrain<K, A> {
    maps: Vec<Shard<K, A>>,
}

impl<K, V, C, S> Container<K, V, C> for HashContainer<K, V, C, S>
where
    K: Ord + Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    C: Combiner<V>,
    S: SeedableBuildHasher,
{
    type Local = LocalHash<K, V, C, S>;
    type Drain = HashDrain<K, C::Acc>;

    fn local(&self) -> Self::Local {
        LocalHash {
            table: LocalTable::with_capacity(self.local_hint.load(Ordering::Relaxed)),
            state: self.state.lock().clone(),
            emitted: 0,
            tokens: 0,
            alloc_spills: 0,
            _marker: PhantomData,
        }
    }

    fn absorb(&self, local: Self::Local) {
        self.pairs.fetch_add(local.emitted, Ordering::Relaxed);
        let metrics = self.metrics.lock().clone();
        if let Some(m) = &metrics {
            if local.tokens > 0 {
                m.emit_tokens.add(local.tokens);
            }
            if local.alloc_spills > 0 {
                m.alloc_spills.add(local.alloc_spills);
            }
        }
        if local.table.is_empty() {
            return;
        }
        self.local_hint.fetch_max(local.table.len(), Ordering::Relaxed);
        let spill = self.spill.lock().clone();
        // RAII occupancy guard: decrements even if a combiner merge
        // panics mid-absorb, so the gauge cannot leak upward.
        let _in_flight = metrics.as_ref().map(|m| m.absorb_in_flight.track(1));

        // Group by destination shard first so each shard lock is taken
        // once per task, not once per key. Uniform hashing spreads the
        // local map evenly, so size every batch for its expected share
        // up front instead of growing it a doubling at a time.
        let hint = local.table.len() / SHARDS + 1;
        let mut batches: Vec<Vec<(Prehashed<K>, C::Acc)>> =
            (0..SHARDS).map(|_| Vec::with_capacity(hint)).collect();
        for (hash, key, acc) in local.table {
            batches[shard_of(hash)].push((Prehashed { hash, key }, acc));
        }
        // Ledger approximation under a budget: vacant inserts charge
        // their codec size hint; merges charge nothing (for counting
        // combiners the accumulator does not grow).
        let mut charged: u64 = 0;
        // Sweep rotation: each shard still receives its batch exactly
        // once; only the *order* locks are taken in changes (already
        // unordered across concurrent absorbs), never placement.
        let active = self.active.lock().clone();
        let start = active
            .as_ref()
            .map_or(0, |a| (self.sweep.fetch_add(1, Ordering::Relaxed) & a.shard_mask()) as usize);
        for step in 0..SHARDS {
            let shard = (start + step) & (SHARDS - 1);
            let batch = std::mem::take(&mut batches[shard]);
            if batch.is_empty() {
                continue;
            }
            let mut guard = match &metrics {
                Some(m) => {
                    let t0 = Instant::now();
                    let guard = self.shards[shard].lock();
                    m.absorb_wait_us.record_duration_us(t0.elapsed());
                    m.absorb_batch.record(batch.len() as u64);
                    guard
                }
                None => self.shards[shard].lock(),
            };
            guard.reserve(batch.len());
            let mut added: u64 = 0;
            for (pk, acc) in batch {
                let size = spill.as_ref().map(|h| (h.size_hint)(&pk.key, &acc) as u64);
                match guard.entry(pk) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        C::merge(e.get_mut(), acc);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        added += size.unwrap_or(0);
                        e.insert(acc);
                    }
                }
            }
            drop(guard);
            if added > 0 {
                self.shard_bytes[shard].fetch_add(added, Ordering::Relaxed);
                charged += added;
            }
        }
        if let Some(hooks) = &spill {
            let over = charged > 0 && hooks.accountant.charge(charged);
            // A governor-requested pre-emptive drain rides the same
            // single-spiller path as budget pressure.
            let requested = active.as_ref().is_some_and(|a| a.take_drain());
            if over || requested {
                self.spill_down(hooks);
            }
        }
    }

    fn configure(&self, hooks: &ContainerHooks) {
        debug_assert_eq!(
            self.pairs.load(Ordering::Relaxed),
            0,
            "configure must precede the first absorb"
        );
        if let Some(seed) = hooks.hash_seed {
            *self.state.lock() = S::from_seed(seed);
        }
        *self.metrics.lock() = hooks.metrics.clone();
        *self.active.lock() = hooks.active.clone();
    }

    fn configure_spill(&self, hooks: &SpillHooks<K, C::Acc>) -> bool {
        debug_assert_eq!(
            self.pairs.load(Ordering::Relaxed),
            0,
            "configure_spill must precede the first absorb"
        );
        *self.spill.lock() = Some(hooks.clone());
        true
    }

    fn distinct_keys(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn total_pairs(&self) -> u64 {
        self.pairs.load(Ordering::Relaxed)
    }

    /// Shards *are* hash-prefix partitions: with `p` the largest power
    /// of two ≤ `parts` (capped at the 64 shards), partition `i` is the
    /// contiguous shard range `[i·64/p, (i+1)·64/p)` — the keys whose
    /// hashes start with prefix `i`. No per-key work happens here;
    /// all-empty ranges are dropped.
    fn into_drains(self, parts: usize) -> Vec<Self::Drain> {
        self.into_indexed_drains(parts).into_iter().map(|(_, d)| d).collect()
    }

    /// Enumerate *before* filtering out all-empty ranges, so a drain's
    /// tag is its true hash-prefix partition — the index spilled runs
    /// of the same shard range carry (`partition_of`).
    fn into_indexed_drains(self, parts: usize) -> Vec<(usize, Self::Drain)> {
        let p = 1usize << parts.clamp(1, SHARDS).ilog2();
        let per = SHARDS / p;
        let mut shards = self.shards.into_iter().map(Mutex::into_inner);
        (0..p)
            .map(|i| (i, HashDrain { maps: shards.by_ref().take(per).collect() }))
            .filter(|(_, d)| d.maps.iter().any(|m| !m.is_empty()))
            .collect()
    }

    fn drain(payload: Self::Drain) -> Vec<(K, C::Acc)> {
        let total: usize = payload.maps.iter().map(HashMap::len).sum();
        let mut out = Vec::with_capacity(total);
        for map in payload.maps {
            out.extend(map.into_iter().map(|(pk, acc)| (pk.key, acc)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::{Buffer, Sum};
    use supmr_metrics::Registry;

    type WC = HashContainer<String, u64, Sum>;

    #[test]
    fn local_combining_shrinks_pairs() {
        let c = WC::new();
        let mut local = c.local();
        for _ in 0..100 {
            local.emit("the".to_string(), 1);
        }
        local.emit("word".to_string(), 1);
        c.absorb(local);
        assert_eq!(c.total_pairs(), 101);
        assert_eq!(c.distinct_keys(), 2);
        let parts = c.into_partitions(4);
        let mut all: Vec<(String, u64)> = parts.into_iter().flatten().collect();
        all.sort();
        assert_eq!(all, vec![("the".to_string(), 100), ("word".to_string(), 1)]);
    }

    #[test]
    fn cross_task_merge_by_key() {
        let c = WC::new();
        for _ in 0..8 {
            let mut local = c.local();
            local.emit("k".to_string(), 2);
            c.absorb(local);
        }
        let all: Vec<(String, u64)> = c.into_partitions(3).into_iter().flatten().collect();
        assert_eq!(all, vec![("k".to_string(), 16)]);
    }

    #[test]
    fn partition_count_is_bounded_and_covering() {
        let c = WC::new();
        let mut local = c.local();
        for i in 0..1000 {
            local.emit(format!("key{i}"), 1);
        }
        c.absorb(local);
        let parts = c.into_partitions(7);
        assert!(parts.len() <= 7);
        assert!(!parts.iter().any(Vec::is_empty));
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn empty_container_has_no_partitions() {
        let c = WC::new();
        assert_eq!(c.distinct_keys(), 0);
        assert_eq!(c.total_pairs(), 0);
        assert!(c.into_partitions(4).is_empty());
    }

    #[test]
    fn buffer_combiner_collects_values() {
        let c: HashContainer<u32, &'static str, Buffer> = HashContainer::new();
        let mut a = c.local();
        a.emit(1, "x");
        a.emit(1, "y");
        c.absorb(a);
        let mut b = c.local();
        b.emit(1, "z");
        c.absorb(b);
        let all: Vec<(u32, Vec<&str>)> = c.into_partitions(1).into_iter().flatten().collect();
        assert_eq!(all.len(), 1);
        let mut vals = all[0].1.clone();
        vals.sort();
        assert_eq!(vals, vec!["x", "y", "z"]);
    }

    #[test]
    fn concurrent_absorbs_are_consistent() {
        let c = std::sync::Arc::new(WC::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    let mut local = c.local();
                    for i in 0..500 {
                        local.emit(format!("key{}", i % 50), 1);
                        local.emit(format!("t{t}-{i}"), 1);
                    }
                    c.absorb(local);
                });
            }
        });
        let c = std::sync::Arc::into_inner(c).unwrap();
        assert_eq!(c.total_pairs(), 8 * 1000);
        assert_eq!(c.distinct_keys(), 50 + 8 * 500);
        let all: Vec<(String, u64)> = c.into_partitions(4).into_iter().flatten().collect();
        let shared: u64 = all.iter().filter(|(k, _)| k.starts_with("key")).map(|(_, v)| v).sum();
        assert_eq!(shared, 8 * 500);
    }

    #[test]
    fn fixed_seed_makes_partition_contents_reproducible() {
        let run = || {
            let c: HashContainer<String, u64, Sum> = HashContainer::with_seed(99);
            let mut local = c.local();
            for i in 0..500 {
                local.emit(format!("key{i}"), 1);
            }
            c.absorb(local);
            c.into_partitions(8)
                .into_iter()
                .map(|mut p| {
                    p.sort();
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same seed, same key→partition placement");
    }

    #[test]
    fn configure_reseeds_and_attaches_metrics() {
        let registry = Registry::new();
        let hooks = ContainerHooks {
            hash_seed: Some(7),
            metrics: Some(ContainerMetrics::register(&registry)),
            active: None,
        };
        let place = |with_hooks: bool| {
            let c: HashContainer<String, u64, Sum> = HashContainer::new();
            if with_hooks {
                c.configure(&hooks);
            }
            let mut local = c.local();
            for i in 0..200 {
                local.emit(format!("key{i}"), 1);
            }
            c.absorb(local);
            c.into_partitions(8).into_iter().map(|p| p.len()).collect::<Vec<_>>()
        };
        assert_eq!(place(true), place(true), "seed 7 fixes placement");
        let batches = registry
            .snapshot()
            .entries
            .iter()
            .find_map(|e| match (&e.name[..], &e.value) {
                ("supmr.container.absorb_batch", supmr_metrics::MetricValue::Histogram(h)) => {
                    Some(h.clone())
                }
                _ => None,
            })
            .expect("absorb batch histogram registered");
        assert_eq!(batches.sum, 2 * 200, "every key counted in exactly one shard batch");
    }

    /// A build hasher that counts how many hashers it hands out — i.e.
    /// how many times a key is hashed through it.
    #[derive(Clone, Default)]
    struct CountingState {
        inner: FxSeededState,
        handed_out: Arc<AtomicU64>,
    }

    impl BuildHasher for CountingState {
        type Hasher = <FxSeededState as BuildHasher>::Hasher;

        fn build_hasher(&self) -> Self::Hasher {
            self.handed_out.fetch_add(1, Ordering::Relaxed);
            self.inner.build_hasher()
        }
    }

    impl SeedableBuildHasher for CountingState {
        fn from_seed(seed: u64) -> Self {
            CountingState {
                inner: FxSeededState::with_seed(seed),
                handed_out: Arc::new(AtomicU64::new(0)),
            }
        }
    }

    #[test]
    fn one_hash_invocation_per_absorbed_key() {
        // Regression for the old double-hash shuffle path (SipHash for
        // shard_for + SipHash again inside the shard map): each emitted
        // key is hashed exactly once, and absorb + drain add zero.
        let state = CountingState::default();
        let counter = Arc::clone(&state.handed_out);
        let c: HashContainer<String, u64, Sum, CountingState> = HashContainer::with_hasher(state);
        let mut local = c.local();
        for i in 0..300 {
            local.emit(format!("key{i}"), 1);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 300, "one hash per emitted key");
        c.absorb(local);
        let parts = c.into_partitions(4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 300);
        assert_eq!(
            counter.load(Ordering::Relaxed),
            300,
            "absorb and drain must reuse the emit-time hash"
        );
    }

    #[test]
    fn borrowed_emit_hashes_once_and_matches_owned_path() {
        use crate::key::CompactKey;
        let state = CountingState::default();
        let counter = Arc::clone(&state.handed_out);
        let c: HashContainer<CompactKey, u64, Sum, CountingState> =
            HashContainer::with_hasher(state);
        let mut local = c.local();
        for _ in 0..50 {
            local.emit_bytes(b"the", 1);
        }
        let long = "a-key-well-beyond-the-twenty-two-byte-inline-cap";
        local.emit_bytes(long.as_bytes(), 1);
        assert_eq!(counter.load(Ordering::Relaxed), 51, "one hash per borrowed emission");
        c.absorb(local);
        let mut all: Vec<(CompactKey, u64)> = c.into_partitions(4).into_iter().flatten().collect();
        all.sort();
        assert_eq!(all, vec![(CompactKey::from(long), 1), (CompactKey::from("the"), 50)]);
        assert_eq!(counter.load(Ordering::Relaxed), 51, "absorb and drain reuse the emit hash");
    }

    #[test]
    fn borrowed_emissions_feed_map_counters() {
        use crate::key::CompactKey;
        let registry = Registry::new();
        let c: HashContainer<CompactKey, u64, Sum> = HashContainer::new();
        c.configure(&ContainerHooks {
            hash_seed: None,
            metrics: Some(ContainerMetrics::register(&registry)),
            active: None,
        });
        let mut local = c.local();
        for _ in 0..10 {
            local.emit_bytes(b"short", 1);
        }
        // Two emissions of one heap-spilling key: only the first insert
        // allocates, so alloc_spills counts 1, not 2.
        let long = b"this key is long enough to heap-spill".as_slice();
        local.emit_bytes(long, 1);
        local.emit_bytes(long, 1);
        c.absorb(local);
        let snapshot = registry.snapshot();
        let counter = |name: &str| {
            snapshot
                .entries
                .iter()
                .find_map(|e| match (&e.name[..], &e.value) {
                    (n, supmr_metrics::MetricValue::Counter(v)) if n == name => Some(*v),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("{name} not registered"))
        };
        assert_eq!(counter("supmr.map.tokens"), 12);
        assert_eq!(counter("supmr.map.alloc_spills"), 1);
    }

    /// Sum-like combiner whose cross-task `merge` panics, to prove
    /// absorb unwinds cleanly.
    struct BoomOnMerge;

    impl Combiner<u64> for BoomOnMerge {
        type Acc = u64;
        fn unit(v: u64) -> u64 {
            v
        }
        fn fold(acc: &mut u64, v: u64) {
            *acc += v;
        }
        fn merge(_into: &mut u64, _from: u64) {
            panic!("merge exploded");
        }
    }

    #[test]
    fn panicking_absorb_leaves_gauges_consistent() {
        let registry = Registry::new();
        let metrics = ContainerMetrics::register(&registry);
        let c: HashContainer<String, u64, BoomOnMerge> = HashContainer::new();
        c.configure(&ContainerHooks {
            hash_seed: None,
            metrics: Some(Arc::clone(&metrics)),
            active: None,
        });
        let mut a = c.local();
        a.emit("k".to_string(), 1);
        c.absorb(a);
        let mut b = c.local();
        b.emit("k".to_string(), 1);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.absorb(b)));
        assert!(panicked.is_err(), "duplicate key must hit the panicking merge");
        assert_eq!(
            metrics.absorb_in_flight.value(),
            0,
            "in-flight gauge must unwind with the absorb"
        );
    }
}
