//! Intermediate key/value containers.
//!
//! Phoenix++'s central design idea — which SupMR inherits — is that the
//! intermediate container is chosen per workload (§V-B):
//!
//! * [`HashContainer`] — keys hash to cells; right when "many pairs share
//!   the same key" (word count) because combining shrinks the
//!   intermediate set at insert time.
//! * [`ArrayContainer`] — keys are dense `usize` indices into a fixed
//!   array (histogram-family applications).
//! * [`UnlockedContainer`] — "unlocked storage, which allows all threads
//!   to write to a single array without synchronization": each map task
//!   appends to its own run, no per-pair locking, for jobs with unique
//!   keys (sort) where hashing and key lookups are pure overhead.
//!
//! All containers are **persistent across map rounds** (§III-C): the
//! pipeline runtime creates a container once and every map wave absorbs
//! into it; nothing is reinitialized between rounds.

mod array;
mod hash;
mod unlocked;

pub use array::ArrayContainer;
pub use hash::HashContainer;
pub use unlocked::UnlockedContainer;

use crate::api::Emit;
use crate::combiner::Combiner;

/// Storage for intermediate pairs between the map and reduce phases.
///
/// The runtime's contract:
///
/// 1. Each map task obtains a [`Container::local`] handle, emits into it
///    (combining happens there, unsynchronized), and the worker
///    [`Container::absorb`]s it when the task ends.
/// 2. After the last map round, [`Container::into_partitions`] hands the
///    accumulated pairs to the reduce phase, split into at most `parts`
///    disjoint groups that can be reduced concurrently. Every key
///    appears in exactly one partition, exactly once.
pub trait Container<K, V, C: Combiner<V>>: Send + Sync + Sized + 'static {
    /// Thread-local insert handle for one map task.
    type Local: Emit<K, V> + Send;

    /// Create a fresh local insert handle.
    fn local(&self) -> Self::Local;

    /// Fold a finished task's local pairs into the shared state.
    fn absorb(&self, local: Self::Local);

    /// Number of distinct keys currently held.
    fn distinct_keys(&self) -> usize;

    /// Total pairs emitted into the container (pre-combining).
    fn total_pairs(&self) -> u64;

    /// Drain into reduce partitions. Returns at least one partition when
    /// any pairs are held; implementations may return more or fewer than
    /// `parts` groups (the unlocked container returns one per map run).
    fn into_partitions(self, parts: usize) -> Vec<Vec<(K, C::Acc)>>;
}

/// Split `items` into at most `parts` near-equal contiguous groups.
pub(crate) fn chunk_into<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let per = items.len().div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut it = items.into_iter();
    loop {
        let group: Vec<T> = it.by_ref().take(per).collect();
        if group.is_empty() {
            break;
        }
        out.push(group);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_into_partitions_evenly() {
        let groups = chunk_into((0..10).collect(), 3);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![0, 1, 2, 3]);
        assert_eq!(groups[2], vec![8, 9]);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 10);
    }

    #[test]
    fn chunk_into_handles_edges() {
        assert!(chunk_into(Vec::<u8>::new(), 4).is_empty());
        let one = chunk_into(vec![1], 8);
        assert_eq!(one, vec![vec![1]]);
        let zero_parts = chunk_into(vec![1, 2], 0);
        assert_eq!(zero_parts, vec![vec![1, 2]]);
    }
}
