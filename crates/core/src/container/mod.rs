//! Intermediate key/value containers.
//!
//! Phoenix++'s central design idea — which SupMR inherits — is that the
//! intermediate container is chosen per workload (§V-B):
//!
//! * [`HashContainer`] — keys hash to cells; right when "many pairs share
//!   the same key" (word count) because combining shrinks the
//!   intermediate set at insert time.
//! * [`ArrayContainer`] — keys are dense `usize` indices into a fixed
//!   array (histogram-family applications).
//! * [`UnlockedContainer`] — "unlocked storage, which allows all threads
//!   to write to a single array without synchronization": each map task
//!   appends to its own run, no per-pair locking, for jobs with unique
//!   keys (sort) where hashing and key lookups are pure overhead.
//!
//! All containers are **persistent across map rounds** (§III-C): the
//! pipeline runtime creates a container once and every map wave absorbs
//! into it; nothing is reinitialized between rounds.
//!
//! The map→reduce handoff is split in two so it can run on the worker
//! pool: [`Container::into_drains`] decomposes the finished container
//! into independent per-partition payloads (cheap, on the calling
//! thread), and [`Container::drain`] materializes one payload into
//! reduce input (the expensive part, dispatched as reduce-wave tasks by
//! `finish_job`). [`Container::into_partitions`] composes the two for
//! call sites that don't need the parallelism.

mod array;
pub mod fast_hash;
mod hash;
mod local_table;
mod unlocked;

pub use array::ArrayContainer;
pub use fast_hash::{FxSeededState, SeedableBuildHasher};
pub use hash::HashContainer;
pub use unlocked::UnlockedContainer;

use crate::api::Emit;
use crate::combiner::Combiner;
use crate::spill::SpillHooks;
use std::sync::Arc;
use supmr_metrics::{Counter, Gauge, Histogram, Registry};

/// Runtime-provided wiring a container receives once, after
/// construction and before the first map wave.
///
/// [`MapReduce::make_container`](crate::api::MapReduce::make_container)
/// takes no configuration, so knobs that originate in
/// [`JobConfig`](crate::runtime::JobConfig) — the hash seed, the live
/// metrics registry — reach the container through this hook instead.
#[derive(Debug, Clone, Default)]
pub struct ContainerHooks {
    /// Reseed the container's key hasher for reproducible placement
    /// (`--hash-seed`). `None` keeps the per-container random seed.
    pub hash_seed: Option<u64>,
    /// Handles into the `supmr.container.*` metric families.
    pub metrics: Option<Arc<ContainerMetrics>>,
    /// The feedback governor's dynamic knobs, when the job runs
    /// adaptively: the absorb lock-sweep rotation mask and pre-emptive
    /// drain requests reach the container through this handle.
    pub active: Option<Arc<crate::runtime::ActiveConfig>>,
}

/// Handles into the `supmr.container.*` metric families the shuffle
/// path maintains: absorb lock acquisition wait, absorbed batch sizes,
/// and absorb occupancy (drain duration is recorded by the runtime,
/// which owns the clock around [`Container::drain`]).
#[derive(Debug, Clone)]
pub struct ContainerMetrics {
    /// `supmr.container.absorb_wait_us` — time an absorb spent waiting
    /// to acquire shard locks, microseconds (per shard batch).
    pub absorb_wait_us: Histogram,
    /// `supmr.container.absorb_batch` — keys merged per shard-lock
    /// acquisition (how well absorbs amortize locking).
    pub absorb_batch: Histogram,
    /// `supmr.container.absorb_in_flight` — absorbs currently merging
    /// into the shared table (RAII-guarded; consistent across panics).
    pub absorb_in_flight: Gauge,
    /// `supmr.map.tokens` — borrowed-slice emissions
    /// ([`Emit::emit_bytes`]) folded through the zero-copy probe path.
    pub emit_tokens: Counter,
    /// `supmr.map.alloc_spills` — borrowed-slice first-inserts whose
    /// key exceeded the inline cap and heap-allocated
    /// ([`ByteKey::spills`](crate::key::ByteKey::spills)).
    pub alloc_spills: Counter,
}

impl ContainerMetrics {
    /// Register (or re-attach to) the container families in `registry`.
    pub fn register(registry: &Registry) -> Arc<ContainerMetrics> {
        Arc::new(ContainerMetrics {
            absorb_wait_us: registry.histogram(
                "supmr.container.absorb_wait_us",
                "Shard-lock acquisition wait during absorb, microseconds.",
                &[],
            ),
            absorb_batch: registry.histogram(
                "supmr.container.absorb_batch",
                "Keys merged per shard-lock acquisition.",
                &[],
            ),
            absorb_in_flight: registry.gauge(
                "supmr.container.absorb_in_flight",
                "Absorb operations currently merging into the shared table.",
                &[],
            ),
            emit_tokens: registry.counter(
                "supmr.map.tokens",
                "Borrowed-slice tokens emitted through the zero-copy map path.",
                &[],
            ),
            alloc_spills: registry.counter(
                "supmr.map.alloc_spills",
                "Zero-copy emissions whose first insert heap-allocated the key.",
                &[],
            ),
        })
    }
}

/// Storage for intermediate pairs between the map and reduce phases.
///
/// The runtime's contract:
///
/// 1. Each map task obtains a [`Container::local`] handle, emits into it
///    (combining happens there, unsynchronized), and the worker
///    [`Container::absorb`]s it when the task ends.
/// 2. After the last map round, [`Container::into_drains`] splits the
///    accumulated pairs into at most `parts` disjoint payloads, each
///    [`Container::drain`]ed to reduce input on a worker. Every key
///    appears in exactly one partition, exactly once.
pub trait Container<K, V, C: Combiner<V>>: Send + Sync + Sized + 'static {
    /// Thread-local insert handle for one map task.
    type Local: Emit<K, V> + Send;

    /// One partition's un-materialized payload, movable to a worker.
    type Drain: Send + 'static;

    /// Create a fresh local insert handle.
    fn local(&self) -> Self::Local;

    /// Fold a finished task's local pairs into the shared state.
    fn absorb(&self, local: Self::Local);

    /// Apply runtime wiring (hash seed, metrics). Called at most once,
    /// before any [`Container::local`] handle exists; the default
    /// ignores the hooks.
    fn configure(&self, _hooks: &ContainerHooks) {}

    /// Attach the out-of-core spill wiring. Called at most once, before
    /// any [`Container::local`] handle exists, and only when the job
    /// runs under a memory budget. Returns whether this container can
    /// spill; the default refuses, which the runtime turns into an
    /// [`InvalidConfig`](crate::error::SupmrError::InvalidConfig) error
    /// rather than silently running unbounded.
    fn configure_spill(&self, _hooks: &SpillHooks<K, C::Acc>) -> bool {
        false
    }

    /// Whether spilled runs from this container hold *folded*
    /// accumulators that must keep folding when equal keys meet across
    /// runs in the external merge (`true` for combining containers), or
    /// independent pairs that must pass through unfolded (`false` for
    /// identity/run containers).
    fn spill_folds() -> bool {
        true
    }

    /// [`Container::into_drains`], with each payload tagged by the
    /// partition index its keys belong to — the same index a spilled
    /// run of those keys carries, so the external merge can pair
    /// in-memory remainders with their on-disk runs. The default
    /// enumeration is correct for containers whose drains *are* the
    /// partitions in order.
    fn into_indexed_drains(self, parts: usize) -> Vec<(usize, Self::Drain)> {
        self.into_drains(parts).into_iter().enumerate().collect()
    }

    /// Number of distinct keys currently held.
    fn distinct_keys(&self) -> usize;

    /// Total pairs emitted into the container (pre-combining).
    fn total_pairs(&self) -> u64;

    /// Decompose into at most `parts` disjoint drain payloads (plus
    /// implementation slack: the unlocked container returns one per map
    /// run). This is the cheap step — no per-key work — so it may run
    /// on the coordinating thread.
    fn into_drains(self, parts: usize) -> Vec<Self::Drain>;

    /// Materialize one payload into reduce input. Associated function
    /// (no `&self`): the container is already consumed, and workers own
    /// their payloads outright.
    fn drain(payload: Self::Drain) -> Vec<(K, C::Acc)>;

    /// [`Container::into_drains`] + [`Container::drain`] on the calling
    /// thread. Returns at least one partition when any pairs are held.
    fn into_partitions(self, parts: usize) -> Vec<Vec<(K, C::Acc)>> {
        self.into_drains(parts).into_iter().map(Self::drain).filter(|p| !p.is_empty()).collect()
    }
}
