//! Open-addressed task-local hash table with borrowed-slice probes.
//!
//! `std::collections::HashMap` cannot look a key up by a *borrowed*
//! `&[u8]` unless the owned key implements `Borrow<[u8]>` with a
//! byte-slice-consistent hash — impossible for `Prehashed`-style wrapped
//! keys, and the unstable raw-entry API is off the table. This small
//! linear-probe table is the stable-Rust replacement backing
//! [`LocalHash`](super::hash::LocalHash): the caller supplies the
//! precomputed hash and an equality closure, so the zero-copy emit path
//! ([`Emit::emit_bytes`](crate::api::Emit::emit_bytes)) probes with the
//! borrowed token bytes and materializes an owned key only when the
//! probe misses.
//!
//! The layout packs each slot's stored hash next to its entry —
//! `(u64, Option<(K, A)>)` — so the probe's hash check and the
//! key/accumulator it guards share one cache line (with a 10k-word
//! Zipf vocabulary the table is L2-resident, and a split hash/entry
//! layout paid a second dependent miss per successful probe). A zero
//! stored hash marks an empty slot. Growth happens on *insert*, not on
//! probe, keeping the repeat-token fold path free of load-factor
//! arithmetic. The stored hash both short-circuits probe comparisons
//! and travels with the key into the sharded global table, preserving
//! the hash-exactly-once shuffle invariant.

/// Initial slot count on first insert (power of two).
const FIRST_CAPACITY: usize = 16;

/// Stand-in for the (2⁻⁶⁴-probability) input hash of zero, which the
/// empty-slot sentinel reserves. Applied identically on every probe, so
/// all tasks agree on the remapped value.
const ZERO_HASH: u64 = 0x9E37_79B9_7F4A_7C15;

/// A task-local linear-probe table keyed by precomputed hashes.
pub struct LocalTable<K, A> {
    /// `(stored hash, entry)`; hash 0 = empty slot.
    slots: Vec<(u64, Option<(K, A)>)>,
    len: usize,
}

impl<K, A> Default for LocalTable<K, A> {
    fn default() -> Self {
        LocalTable { slots: Vec::new(), len: 0 }
    }
}

impl<K, A> LocalTable<K, A> {
    /// An empty table pre-sized so `expected` entries insert without
    /// growing (used by containers to carry a high-water-mark hint
    /// across tasks, skipping the per-task rehash cascade).
    pub fn with_capacity(expected: usize) -> Self {
        if expected == 0 {
            return LocalTable::default();
        }
        // Slots such that `expected` stays under the 7/8 load limit.
        let slots = (expected + expected / 7 + 1).next_power_of_two().max(FIRST_CAPACITY);
        LocalTable { slots: (0..slots).map(|_| (0, None)).collect(), len: 0 }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Locate `hash`'s entry: `Occupied` borrows the accumulator of the
    /// slot whose stored hash matches and whose key satisfies `eq`;
    /// `Vacant` is positioned at the insertion slot (and re-probes
    /// after growing if materializing it would cross 7/8 load).
    #[inline]
    pub fn entry(&mut self, hash: u64, eq: impl Fn(&K) -> bool) -> Entry<'_, K, A> {
        let hash = if hash == 0 { ZERO_HASH } else { hash };
        if self.slots.is_empty() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let h = self.slots[i].0;
            if h == 0 {
                return Entry::Vacant(VacantSlot { table: self, index: i, hash });
            }
            if h == hash {
                if let Some((k, _)) = &self.slots[i].1 {
                    if eq(k) {
                        let Some((_, acc)) = self.slots[i].1.as_mut() else { unreachable!() };
                        return Entry::Occupied(acc);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Double the slot array and re-place every entry by stored hash
    /// (no key re-hashing).
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(FIRST_CAPACITY);
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| (0, None)).collect());
        let mask = new_cap - 1;
        for (h, entry) in old {
            if h == 0 {
                continue;
            }
            let mut i = (h as usize) & mask;
            while self.slots[i].0 != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = (h, entry);
        }
    }
}

/// Result of a [`LocalTable::entry`] probe.
pub enum Entry<'t, K, A> {
    /// The key is present; fold into its accumulator.
    Occupied(&'t mut A),
    /// The key is absent; insert at the probed slot.
    Vacant(VacantSlot<'t, K, A>),
}

/// An insertion point returned by a missed probe.
pub struct VacantSlot<'t, K, A> {
    table: &'t mut LocalTable<K, A>,
    index: usize,
    hash: u64,
}

impl<K, A> VacantSlot<'_, K, A> {
    /// Materialize the key into the probed slot, growing (and
    /// re-probing, since growth moves slots) when this insert would
    /// cross the 7/8 load limit. The limit keeps the table strictly
    /// under-full, so every probe sequence terminates at an empty slot.
    #[inline]
    pub fn insert(self, key: K, acc: A) {
        let t = self.table;
        let mut i = self.index;
        if t.len + 1 > t.slots.len() - t.slots.len() / 8 {
            t.grow();
            let mask = t.slots.len() - 1;
            i = (self.hash as usize) & mask;
            while t.slots[i].0 != 0 {
                i = (i + 1) & mask;
            }
        }
        t.slots[i] = (self.hash, Some((key, acc)));
        t.len += 1;
    }
}

/// Draining iterator over `(stored hash, key, accumulator)`.
pub struct IntoIter<K, A> {
    slots: std::vec::IntoIter<(u64, Option<(K, A)>)>,
}

impl<K, A> Iterator for IntoIter<K, A> {
    type Item = (u64, K, A);

    fn next(&mut self) -> Option<(u64, K, A)> {
        loop {
            let (h, entry) = self.slots.next()?;
            if let Some((k, a)) = entry {
                debug_assert_ne!(h, 0, "occupied slot with sentinel hash");
                return Some((h, k, a));
            }
        }
    }
}

impl<K, A> IntoIterator for LocalTable<K, A> {
    type Item = (u64, K, A);
    type IntoIter = IntoIter<K, A>;

    fn into_iter(self) -> IntoIter<K, A> {
        IntoIter { slots: self.slots.into_iter() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_str(t: &mut LocalTable<String, u64>, key: &str, hash: u64) {
        match t.entry(hash, |k| k == key) {
            Entry::Occupied(acc) => *acc += 1,
            Entry::Vacant(v) => v.insert(key.to_string(), 1),
        }
    }

    #[test]
    fn folds_repeats_and_inserts_distinct() {
        let mut t = LocalTable::default();
        for _ in 0..10 {
            insert_str(&mut t, "the", 42);
        }
        insert_str(&mut t, "word", 7);
        assert_eq!(t.len(), 2);
        let mut all: Vec<(u64, String, u64)> = t.into_iter().collect();
        all.sort();
        assert_eq!(all, vec![(7, "word".into(), 1), (42, "the".into(), 10)]);
    }

    #[test]
    fn colliding_hashes_stay_distinct_keys() {
        // Same hash, different keys: linear probing must keep both.
        let mut t = LocalTable::default();
        insert_str(&mut t, "alpha", 99);
        insert_str(&mut t, "beta", 99);
        insert_str(&mut t, "alpha", 99);
        assert_eq!(t.len(), 2);
        let mut all: Vec<(String, u64)> = t.into_iter().map(|(_, k, a)| (k, a)).collect();
        all.sort();
        assert_eq!(all, vec![("alpha".into(), 2), ("beta".into(), 1)]);
    }

    #[test]
    fn hash_zero_keys_survive_the_sentinel() {
        // 0 marks empty slots internally; a real zero hash must still
        // insert, fold, and drain (with the remapped stored hash).
        let mut t = LocalTable::default();
        insert_str(&mut t, "zero", 0);
        insert_str(&mut t, "zero", 0);
        assert_eq!(t.len(), 1);
        let all: Vec<(u64, String, u64)> = t.into_iter().collect();
        assert_eq!(all, vec![(ZERO_HASH, "zero".into(), 2)]);
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut t = LocalTable::default();
        // Far past several doublings, with adversarial hashes that all
        // target the same initial slot (multiples of a large power of 2).
        for i in 0..5_000u64 {
            let key = format!("key{i}");
            let hash = i << 32;
            match t.entry(hash, |k| *k == key) {
                Entry::Occupied(acc) => *acc += 1,
                Entry::Vacant(v) => v.insert(key, 1),
            }
        }
        assert_eq!(t.len(), 5_000);
        for i in (0..5_000u64).step_by(97) {
            let key = format!("key{i}");
            match t.entry(i << 32, |k| *k == key) {
                Entry::Occupied(acc) => assert_eq!(*acc, 1),
                Entry::Vacant(_) => panic!("key{i} lost in growth"),
            }
        }
    }

    #[test]
    fn with_capacity_inserts_without_growing() {
        let mut t: LocalTable<String, u64> = LocalTable::with_capacity(100);
        let slots = t.slots.len();
        assert!(slots >= 100);
        for i in 0..100u64 {
            insert_str(&mut t, &format!("key{i}"), i + 1);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.slots.len(), slots, "pre-sized table must not grow");
    }

    #[test]
    fn empty_table_iterates_nothing() {
        let t: LocalTable<String, u64> = LocalTable::default();
        assert!(t.is_empty());
        assert_eq!(t.into_iter().count(), 0);
    }
}
