//! The unlocked container: per-task run storage with no per-pair
//! synchronization.
//!
//! For applications like sort "the large input set is transformed to an
//! equal sized intermediate set" with unique keys, so a hash container
//! pays for key lookups that never hit and reducers "needlessly sweep
//! the array" (§V-B). Phoenix's answer is *unlocked storage*: every map
//! task writes to its own region of a shared array without
//! synchronization. The safe-Rust equivalent keeps each task's output as
//! an owned run and shares only the run list — one lock acquisition per
//! *task* (to publish the run), zero per pair, and the runs double as
//! the sorted-run inputs the merge phase consumes.

use super::Container;
use crate::api::Emit;
use crate::combiner::Combiner;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Run-per-task storage for unique-key workloads.
pub struct UnlockedContainer<K, V> {
    runs: Mutex<Vec<Vec<(K, V)>>>,
    pairs: AtomicU64,
}

impl<K, V> Default for UnlockedContainer<K, V> {
    fn default() -> Self {
        UnlockedContainer { runs: Mutex::new(Vec::new()), pairs: AtomicU64::new(0) }
    }
}

impl<K, V> UnlockedContainer<K, V> {
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of runs published so far (= completed map tasks that
    /// emitted at least one pair).
    pub fn run_count(&self) -> usize {
        self.runs.lock().len()
    }

    /// Total pairs published (inherent counterpart of
    /// [`Container::total_pairs`], callable without naming a combiner).
    pub fn pair_count(&self) -> u64 {
        self.pairs.load(Ordering::Relaxed)
    }
}

/// Thread-local run under construction.
pub struct LocalRun<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Emit<K, V> for LocalRun<K, V> {
    fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }
}

impl<K, V, C> Container<K, V, C> for UnlockedContainer<K, V>
where
    K: Ord + std::hash::Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    C: Combiner<V, Acc = V>,
{
    type Local = LocalRun<K, V>;
    type Drain = Vec<(K, V)>;

    fn local(&self) -> Self::Local {
        LocalRun { pairs: Vec::new() }
    }

    fn absorb(&self, local: Self::Local) {
        if local.pairs.is_empty() {
            return;
        }
        self.pairs.fetch_add(local.pairs.len() as u64, Ordering::Relaxed);
        self.runs.lock().push(local.pairs);
    }

    /// Unique-key assumption: every pair is its own key.
    fn distinct_keys(&self) -> usize {
        self.pairs.load(Ordering::Relaxed) as usize
    }

    fn total_pairs(&self) -> u64 {
        self.pairs.load(Ordering::Relaxed)
    }

    /// Returns one drain per map run, ignoring `parts`: the runs are
    /// exactly the sorted lists the merge phase operates on, and keeping
    /// them separate is what lets the merge experiments control the
    /// baseline's round count.
    fn into_drains(self, _parts: usize) -> Vec<Self::Drain> {
        self.runs.into_inner()
    }

    /// A run already *is* reduce input; draining is the identity.
    fn drain(payload: Self::Drain) -> Vec<(K, V)> {
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::Identity;

    fn absorb_run(c: &UnlockedContainer<u64, String>, pairs: Vec<(u64, String)>) {
        let mut local =
            <UnlockedContainer<u64, String> as Container<u64, String, Identity>>::local(c);
        for (k, v) in pairs {
            local.emit(k, v);
        }
        <UnlockedContainer<u64, String> as Container<u64, String, Identity>>::absorb(c, local);
    }

    fn partitions(c: UnlockedContainer<u64, String>) -> Vec<Vec<(u64, String)>> {
        <UnlockedContainer<u64, String> as Container<u64, String, Identity>>::into_partitions(c, 99)
    }

    #[test]
    fn runs_stay_separate_and_ordered() {
        let c = UnlockedContainer::new();
        absorb_run(&c, vec![(3, "c".into()), (1, "a".into())]);
        absorb_run(&c, vec![(2, "b".into())]);
        assert_eq!(c.run_count(), 2);
        assert_eq!(c.pair_count(), 3);
        let parts = partitions(c);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], vec![(3, "c".to_string()), (1, "a".to_string())]);
        assert_eq!(parts[1], vec![(2, "b".to_string())]);
    }

    #[test]
    fn empty_tasks_publish_nothing() {
        let c = UnlockedContainer::new();
        absorb_run(&c, vec![]);
        assert_eq!(c.run_count(), 0);
        assert!(partitions(c).is_empty());
    }

    #[test]
    fn concurrent_publication() {
        let c = std::sync::Arc::new(UnlockedContainer::new());
        std::thread::scope(|s| {
            for t in 0..16u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    absorb_run(&c, (0..100).map(|i| (t * 1000 + i, format!("v{i}"))).collect());
                });
            }
        });
        let c = std::sync::Arc::into_inner(c).unwrap();
        assert_eq!(c.run_count(), 16);
        assert_eq!(c.pair_count(), 1600);
        let parts = partitions(c);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1600);
    }
}
