//! The unlocked container: per-task run storage with no per-pair
//! synchronization.
//!
//! For applications like sort "the large input set is transformed to an
//! equal sized intermediate set" with unique keys, so a hash container
//! pays for key lookups that never hit and reducers "needlessly sweep
//! the array" (§V-B). Phoenix's answer is *unlocked storage*: every map
//! task writes to its own region of a shared array without
//! synchronization. The safe-Rust equivalent keeps each task's output as
//! an owned run and shares only the run list — one lock acquisition per
//! *task* (to publish the run), zero per pair, and the runs double as
//! the sorted-run inputs the merge phase consumes.

use super::Container;
use crate::api::Emit;
use crate::combiner::Combiner;
use crate::spill::SpillHooks;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One published map run, with its estimated in-memory footprint (the
/// summed codec size hints; 0 when no budget is configured).
struct SizedRun<K, V> {
    bytes: u64,
    pairs: Vec<(K, V)>,
}

/// Run-per-task storage for unique-key workloads.
pub struct UnlockedContainer<K, V> {
    runs: Mutex<Vec<SizedRun<K, V>>>,
    pairs: AtomicU64,
    /// Out-of-core wiring ([`Container::configure_spill`]); `None`
    /// keeps absorb on the unmetered hot path.
    spill: Mutex<Option<SpillHooks<K, V>>>,
    /// Single-spiller token (see the hash container's counterpart).
    spilling: Mutex<()>,
}

impl<K, V> Default for UnlockedContainer<K, V> {
    fn default() -> Self {
        UnlockedContainer {
            runs: Mutex::new(Vec::new()),
            pairs: AtomicU64::new(0),
            spill: Mutex::new(None),
            spilling: Mutex::new(()),
        }
    }
}

impl<K, V> UnlockedContainer<K, V> {
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of runs published so far (= completed map tasks that
    /// emitted at least one pair).
    pub fn run_count(&self) -> usize {
        self.runs.lock().len()
    }

    /// Total pairs published (inherent counterpart of
    /// [`Container::total_pairs`], callable without naming a combiner).
    pub fn pair_count(&self) -> u64 {
        self.pairs.load(Ordering::Relaxed)
    }

    /// Spill largest published runs until the ledger is below its low
    /// watermark. All runs carry partition tag 0: map runs are not
    /// key-range partitioned, so under a budget the whole key space is
    /// one external-merge partition.
    fn spill_down(&self, hooks: &SpillHooks<K, V>) {
        let Some(_token) = self.spilling.try_lock() else { return };
        while hooks.accountant.over_low() {
            let run = {
                let mut runs = self.runs.lock();
                let victim =
                    runs.iter().enumerate().max_by_key(|(_, r)| r.bytes).map(|(idx, _)| idx);
                match victim {
                    Some(idx) => runs.swap_remove(idx),
                    None => break,
                }
            };
            if !run.pairs.is_empty() {
                (hooks.sink)(0, run.pairs);
            }
            hooks.accountant.release(run.bytes);
        }
    }
}

/// Thread-local run under construction.
pub struct LocalRun<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Emit<K, V> for LocalRun<K, V> {
    fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }
}

impl<K, V, C> Container<K, V, C> for UnlockedContainer<K, V>
where
    K: Ord + std::hash::Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    C: Combiner<V, Acc = V>,
{
    type Local = LocalRun<K, V>;
    type Drain = Vec<(K, V)>;

    fn local(&self) -> Self::Local {
        LocalRun { pairs: Vec::new() }
    }

    fn absorb(&self, local: Self::Local) {
        if local.pairs.is_empty() {
            return;
        }
        self.pairs.fetch_add(local.pairs.len() as u64, Ordering::Relaxed);
        let spill = self.spill.lock().clone();
        let bytes = match &spill {
            Some(h) => local.pairs.iter().map(|(k, v)| (h.size_hint)(k, v) as u64).sum(),
            None => 0,
        };
        self.runs.lock().push(SizedRun { bytes, pairs: local.pairs });
        if let Some(hooks) = &spill {
            if hooks.accountant.charge(bytes) {
                self.spill_down(hooks);
            }
        }
    }

    fn configure_spill(&self, hooks: &SpillHooks<K, V>) -> bool {
        *self.spill.lock() = Some(hooks.clone());
        true
    }

    /// Runs hold independent unique-key pairs; folding them across runs
    /// would corrupt identity-combined values.
    fn spill_folds() -> bool {
        false
    }

    /// Every run (like every spilled run) belongs to partition 0 — see
    /// `UnlockedContainer::spill_down`.
    fn into_indexed_drains(self, _parts: usize) -> Vec<(usize, Self::Drain)> {
        self.runs.into_inner().into_iter().map(|r| (0, r.pairs)).collect()
    }

    /// Unique-key assumption: every pair is its own key.
    fn distinct_keys(&self) -> usize {
        self.pairs.load(Ordering::Relaxed) as usize
    }

    fn total_pairs(&self) -> u64 {
        self.pairs.load(Ordering::Relaxed)
    }

    /// Returns one drain per map run, ignoring `parts`: the runs are
    /// exactly the sorted lists the merge phase operates on, and keeping
    /// them separate is what lets the merge experiments control the
    /// baseline's round count.
    fn into_drains(self, _parts: usize) -> Vec<Self::Drain> {
        self.runs.into_inner().into_iter().map(|r| r.pairs).collect()
    }

    /// A run already *is* reduce input; draining is the identity.
    fn drain(payload: Self::Drain) -> Vec<(K, V)> {
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::Identity;

    fn absorb_run(c: &UnlockedContainer<u64, String>, pairs: Vec<(u64, String)>) {
        let mut local =
            <UnlockedContainer<u64, String> as Container<u64, String, Identity>>::local(c);
        for (k, v) in pairs {
            local.emit(k, v);
        }
        <UnlockedContainer<u64, String> as Container<u64, String, Identity>>::absorb(c, local);
    }

    fn partitions(c: UnlockedContainer<u64, String>) -> Vec<Vec<(u64, String)>> {
        <UnlockedContainer<u64, String> as Container<u64, String, Identity>>::into_partitions(c, 99)
    }

    #[test]
    fn runs_stay_separate_and_ordered() {
        let c = UnlockedContainer::new();
        absorb_run(&c, vec![(3, "c".into()), (1, "a".into())]);
        absorb_run(&c, vec![(2, "b".into())]);
        assert_eq!(c.run_count(), 2);
        assert_eq!(c.pair_count(), 3);
        let parts = partitions(c);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], vec![(3, "c".to_string()), (1, "a".to_string())]);
        assert_eq!(parts[1], vec![(2, "b".to_string())]);
    }

    #[test]
    fn empty_tasks_publish_nothing() {
        let c = UnlockedContainer::new();
        absorb_run(&c, vec![]);
        assert_eq!(c.run_count(), 0);
        assert!(partitions(c).is_empty());
    }

    #[test]
    fn concurrent_publication() {
        let c = std::sync::Arc::new(UnlockedContainer::new());
        std::thread::scope(|s| {
            for t in 0..16u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    absorb_run(&c, (0..100).map(|i| (t * 1000 + i, format!("v{i}"))).collect());
                });
            }
        });
        let c = std::sync::Arc::into_inner(c).unwrap();
        assert_eq!(c.run_count(), 16);
        assert_eq!(c.pair_count(), 1600);
        let parts = partitions(c);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1600);
    }
}
