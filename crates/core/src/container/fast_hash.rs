//! Dependency-free FxHash-style hashing for the shuffle hot path.
//!
//! The default [`std::collections::HashMap`] hasher (SipHash-1-3) is
//! keyed and DoS-resistant but costs tens of cycles per word — and the
//! old container paid it **twice** per absorbed key (once to pick a
//! shard, once inside the shard map). [`FxSeededState`] replaces it with
//! the multiply-xor scheme rustc uses internally: a rotate, an xor, and
//! one 64-bit multiply per word, unkeyed by design and therefore
//! seedable for reproducible runs (`--hash-seed`). Intermediate keys
//! come from job *data*, not from a network adversary, so the HashDoS
//! posture is: random seed by default (per-container, from the
//! process's SipHash keys), explicit seed on request (see DESIGN.md
//! §3f).
//!
//! The container hashes every key **once** with this state, routes the
//! high bits to a shard, and stores the full hash alongside the key so
//! the shard map never re-hashes (`PassthroughState`).

use std::hash::{BuildHasher, Hasher, RandomState};

/// The Fx multiplier (the 64-bit golden-ratio constant rustc uses).
const FX_K: u64 = 0x517c_c1b7_2722_0a95;

/// A [`BuildHasher`] that can be reconstructed from an explicit seed —
/// the hook [`JobConfig::hash_seed`](crate::runtime::JobConfig) uses to
/// make a container's key placement reproducible across runs.
pub trait SeedableBuildHasher: BuildHasher + Clone + Send + Sync + 'static {
    /// A state that hashes identically for equal seeds.
    fn from_seed(seed: u64) -> Self;
}

/// Seedable FxHash-style build hasher.
///
/// Equal seeds hash equally — across containers, threads, and runs.
/// [`FxSeededState::new`] draws a random seed so distinct containers
/// disagree by default (flooding one run teaches nothing about the
/// next).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FxSeededState {
    seed: u64,
}

impl FxSeededState {
    /// A state with a random per-instance seed.
    pub fn new() -> FxSeededState {
        // Derive the seed from std's per-process random SipHash keys;
        // no extra entropy source or dependency needed.
        FxSeededState { seed: RandomState::new().hash_one(0x5eed_5eedu64) }
    }

    /// A state with an explicit seed (reproducible placement).
    pub fn with_seed(seed: u64) -> FxSeededState {
        FxSeededState { seed }
    }

    /// The seed this state hashes with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for FxSeededState {
    fn default() -> Self {
        FxSeededState::new()
    }
}

impl BuildHasher for FxSeededState {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: self.seed }
    }
}

impl SeedableBuildHasher for FxSeededState {
    fn from_seed(seed: u64) -> Self {
        FxSeededState::with_seed(seed)
    }
}

/// The word-at-a-time multiply-xor hasher [`FxSeededState`] builds.
#[derive(Debug, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        let n = tail.len();
        if n > 0 {
            // Assemble the zero-padded little-endian tail word from two
            // overlapping loads instead of a serial byte loop — with
            // 2-7-byte word-count tokens the loop dominated the hash.
            // The overlap re-ORs identical bits, so the value (and thus
            // every previously computed hash) is unchanged.
            let word = if n >= 4 {
                let lo = u32::from_le_bytes(tail[..4].try_into().unwrap()) as u64;
                let hi = u32::from_le_bytes(tail[n - 4..].try_into().unwrap()) as u64;
                lo | (hi << ((n - 4) * 8))
            } else {
                let lo = tail[0] as u64;
                let mid = (tail[n / 2] as u64) << (8 * (n / 2));
                let hi = (tail[n - 1] as u64) << (8 * (n - 1));
                lo | mid | hi
            };
            // Fold the tail length in so "ab" + "" and "a" + "b"
            // prefixes cannot collide trivially.
            self.add_to_hash(word ^ (n as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A build hasher whose "hash" is the pre-computed value itself.
///
/// The shard maps key on `Prehashed` wrappers that carry the Fx hash
/// computed at emit time; this state just passes that value
/// through (rotated so hashbrown's top-7-bit control tags don't all
/// collide on the shard prefix). Never use it with keys that hash more
/// than one `u64`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PassthroughState;

impl BuildHasher for PassthroughState {
    type Hasher = PassthroughHasher;

    #[inline]
    fn build_hasher(&self) -> PassthroughHasher {
        PassthroughHasher { hash: 0 }
    }
}

/// Hasher built by [`PassthroughState`].
#[derive(Debug, Clone)]
pub(crate) struct PassthroughHasher {
    hash: u64,
}

impl Hasher for PassthroughHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The top bits of a prehashed value encode the shard, so inside
        // one shard they are constant; rotate them away from the bucket
        // control bits the map derives from the top of the hash.
        self.hash.rotate_left(16)
    }

    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("passthrough hashing accepts only write_u64");
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_hash_equally_distinct_seeds_differ() {
        let a = FxSeededState::with_seed(7);
        let b = FxSeededState::with_seed(7);
        let c = FxSeededState::with_seed(8);
        for key in ["", "a", "hello world", "0123456789abcdef-longer-than-a-word"] {
            assert_eq!(a.hash_one(key), b.hash_one(key), "{key:?}");
            assert_ne!(a.hash_one(key), c.hash_one(key), "{key:?}");
        }
        assert_eq!(a.hash_one(12345u64), b.hash_one(12345u64));
    }

    #[test]
    fn random_states_disagree() {
        let a = FxSeededState::new();
        let b = FxSeededState::new();
        assert_ne!(a.seed(), b.seed(), "independent states must draw distinct seeds");
    }

    #[test]
    fn bytes_hash_spreads_prefixes() {
        let s = FxSeededState::with_seed(0);
        // Tail-length folding: a split prefix is not the concatenation.
        assert_ne!(s.hash_one("ab"), s.hash_one("a"));
        assert_ne!(s.hash_one([1u8; 7].as_slice()), s.hash_one([1u8; 8].as_slice()));
        // High bits (the shard prefix) vary across small keys.
        let tops: std::collections::HashSet<u64> =
            (0u64..64).map(|i| s.hash_one(i) >> 58).collect();
        assert!(tops.len() > 16, "only {} distinct top-6-bit prefixes", tops.len());
    }

    #[test]
    fn passthrough_returns_rotated_written_word() {
        let s = PassthroughState;
        let mut h = s.build_hasher();
        h.write_u64(0xdead_beef_0000_0001);
        assert_eq!(h.finish(), 0xdead_beef_0000_0001u64.rotate_left(16));
    }
}
