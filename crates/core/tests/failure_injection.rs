//! Failure injection: ingest errors must surface as typed
//! [`SupmrError`]s from `Job::run` — cleanly, from whichever thread hit
//! them — never as hangs, partial results, or panics. Exercises all
//! three ingest paths (original, double-buffered pipeline, N-buffered
//! pipeline) and both input shapes, plus map panics (which come back as
//! [`SupmrError::TaskPanic`] rather than unwinding through the caller).

use std::io::ErrorKind;
use supmr::api::{Emit, MapReduce};
use supmr::combiner::Sum;
use supmr::container::HashContainer;
use supmr::runtime::{Input, Job, JobConfig};
use supmr::{Chunking, PoolMode, SupmrError};
use supmr_storage::{FaultyFileSet, FaultySource, MemFileSet, MemSource};
use supmr_workloads::{small_files_corpus, TextGen, TextGenConfig};

struct WordCount;

impl MapReduce for WordCount {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        for word in split.split(|b| b.is_ascii_whitespace()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _k: &String, acc: u64) -> u64 {
        acc
    }
}

/// WordCount whose map panics when its split contains the trigger token.
struct PanicOnToken;

impl MapReduce for PanicOnToken {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        assert!(!split.windows(5).any(|w| w == b"BOOM!"), "injected map panic");
        for word in split.split(|b| b.is_ascii_whitespace()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _k: &String, acc: u64) -> u64 {
        acc
    }
}

fn text(bytes: usize) -> Vec<u8> {
    TextGen::new(TextGenConfig::default()).generate_bytes(2, bytes)
}

fn config() -> JobConfig {
    JobConfig { map_workers: 2, reduce_workers: 2, split_bytes: 4096, ..JobConfig::default() }
}

#[test]
fn original_runtime_surfaces_ingest_errors() {
    let source = FaultySource::new(MemSource::from(text(100_000)), 50_000, ErrorKind::BrokenPipe);
    let err = Job::new(WordCount).config(config()).run(Input::stream(source)).unwrap_err();
    assert_eq!(err.io_kind(), Some(ErrorKind::BrokenPipe));
}

#[test]
fn double_buffered_pipeline_surfaces_mid_stream_errors() {
    // Fault lands several chunks in, so the error happens on the
    // overlapped ingest thread while a map wave is running.
    let source = FaultySource::new(MemSource::from(text(200_000)), 90_000, ErrorKind::BrokenPipe);
    let mut cfg = config();
    cfg.chunking = Chunking::Inter { chunk_bytes: 16 * 1024 };
    let err = Job::new(WordCount).config(cfg).run(Input::stream(source)).unwrap_err();
    assert_eq!(err.io_kind(), Some(ErrorKind::BrokenPipe));
    assert!(
        matches!(err, SupmrError::Ingest { chunk: Some(c), .. } if c > 0),
        "mid-stream fault must carry a non-zero chunk index: {err:?}"
    );
}

#[test]
fn buffered_pipeline_surfaces_mid_stream_errors() {
    let source = FaultySource::new(MemSource::from(text(200_000)), 90_000, ErrorKind::TimedOut);
    let mut cfg = config();
    cfg.chunking = Chunking::Inter { chunk_bytes: 16 * 1024 };
    cfg.prefetch_depth = 4;
    let err = Job::new(WordCount).config(cfg).run(Input::stream(source)).unwrap_err();
    assert_eq!(err.io_kind(), Some(ErrorKind::TimedOut));
}

#[test]
fn fault_on_first_chunk_fails_before_any_round() {
    let source = FaultySource::new(MemSource::from(text(50_000)), 0, ErrorKind::NotFound);
    let mut cfg = config();
    cfg.chunking = Chunking::Inter { chunk_bytes: 8 * 1024 };
    let err = Job::new(WordCount).config(cfg).run(Input::stream(source)).unwrap_err();
    assert_eq!(err.io_kind(), Some(ErrorKind::NotFound));
    assert!(
        matches!(err, SupmrError::Ingest { chunk: Some(0), .. }),
        "first-chunk fault must name chunk 0: {err:?}"
    );
}

#[test]
fn intra_file_pipeline_surfaces_file_errors() {
    let files = small_files_corpus(6, 9, 2_000);
    let faulty = FaultyFileSet::new(MemFileSet::new(files), 5, ErrorKind::PermissionDenied);
    let mut cfg = config();
    cfg.chunking = Chunking::Intra { files_per_chunk: 2 };
    let err = Job::new(WordCount).config(cfg).run(Input::files(faulty)).unwrap_err();
    assert_eq!(err.io_kind(), Some(ErrorKind::PermissionDenied));
}

#[test]
fn hybrid_pipeline_surfaces_file_errors() {
    let files = small_files_corpus(6, 6, 2_000);
    let faulty = FaultyFileSet::new(MemFileSet::new(files), 3, ErrorKind::PermissionDenied);
    let mut cfg = config();
    cfg.chunking = Chunking::Hybrid { chunk_bytes: 3_000 };
    let err = Job::new(WordCount).config(cfg).run(Input::files(faulty)).unwrap_err();
    assert_eq!(err.io_kind(), Some(ErrorKind::PermissionDenied));
}

#[test]
fn original_runtime_surfaces_file_errors() {
    let files = small_files_corpus(6, 4, 1_000);
    let faulty = FaultyFileSet::new(MemFileSet::new(files), 0, ErrorKind::Interrupted);
    let err = Job::new(WordCount).config(config()).run(Input::files(faulty)).unwrap_err();
    assert_eq!(err.io_kind(), Some(ErrorKind::Interrupted));
}

#[test]
fn pooled_map_panic_fails_the_job_with_the_original_payload() {
    // The trigger sits near the end so several waves dispatch through
    // the pool (reusing its threads) before one of them panics. The
    // panic must come back to Job::run's caller as a typed
    // `TaskPanic` carrying the payload text — not hang waiting for
    // results, not kill the process, and not unwind through Job::run.
    let mut data = text(40_000);
    data.extend_from_slice(b"\nBOOM! tail words\n");
    let mut cfg = config();
    cfg.chunking = Chunking::Inter { chunk_bytes: 8 * 1024 };
    cfg.pool = PoolMode::Persistent;
    let err = Job::new(PanicOnToken)
        .config(cfg)
        .run(Input::stream(MemSource::from(data)))
        .expect_err("map panic must surface as an error from Job::run");
    match &err {
        SupmrError::TaskPanic { payload } => {
            assert!(payload.contains("injected map panic"), "unexpected payload: {payload:?}");
        }
        other => panic!("expected TaskPanic, got {other:?}"),
    }
    assert_eq!(err.io_kind(), None);

    // The unwind dropped the job's pool (joining its workers); a fresh
    // pooled job afterwards must run to completion.
    let mut cfg = config();
    cfg.chunking = Chunking::Inter { chunk_bytes: 8 * 1024 };
    cfg.pool = PoolMode::Persistent;
    let r =
        Job::new(WordCount).config(cfg).run(Input::stream(MemSource::from(text(20_000)))).unwrap();
    assert!(!r.pairs.is_empty());
    assert!(r.report.stats.threads_reused > 0);
}

#[test]
fn pooled_job_surfaces_ingest_errors_and_joins_the_pool() {
    let source = FaultySource::new(MemSource::from(text(200_000)), 90_000, ErrorKind::BrokenPipe);
    let mut cfg = config();
    cfg.chunking = Chunking::Inter { chunk_bytes: 16 * 1024 };
    cfg.pool = PoolMode::Persistent;
    let err = Job::new(WordCount).config(cfg).run(Input::stream(source)).unwrap_err();
    assert_eq!(err.io_kind(), Some(ErrorKind::BrokenPipe));
}

#[test]
fn fault_beyond_input_never_fires() {
    // A fault past EOF must be unreachable: job completes normally.
    let data = text(30_000);
    let expected = Job::new(WordCount)
        .config(config())
        .run(Input::stream(MemSource::from(data.clone())))
        .unwrap();
    let source = FaultySource::new(MemSource::from(data), u64::MAX, ErrorKind::BrokenPipe);
    let mut cfg = config();
    cfg.chunking = Chunking::Inter { chunk_bytes: 8 * 1024 };
    let result = Job::new(WordCount).config(cfg).run(Input::stream(source)).unwrap();
    assert_eq!(result.sorted_pairs(), expected.sorted_pairs());
}
