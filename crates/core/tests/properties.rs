//! Property tests for the core runtime: for arbitrary inputs and chunk
//! geometries, the pipeline must compute exactly what the original
//! runtime computes, and chunking must account for every input byte.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::hash_map::RandomState;
use std::hash::BuildHasher;
use supmr::api::{Emit, MapReduce};
use supmr::chunk::{Chunker, InterFileChunker, IntraFileChunker};
use supmr::combiner::Sum;
use supmr::container::{Container, HashContainer};
use supmr::runtime::{Input, Job, JobConfig, MergeMode};
use supmr::{Chunking, CompactKey, PoolMode};
use supmr_storage::{MemFileSet, MemSource, RecordFormat};

struct WordCount;

impl MapReduce for WordCount {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        for word in split.split(|b| b.is_ascii_whitespace()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _key: &String, acc: u64) -> u64 {
        acc
    }
}

/// Arbitrary newline-framed text (words of a–e letters so collisions are
/// frequent and combining is exercised).
fn arb_text() -> impl Strategy<Value = Vec<u8>> {
    vec(vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' ')], 0..30), 0..40).prop_map(
        |lines| {
            let mut out = Vec::new();
            for l in lines {
                out.extend_from_slice(&l);
                out.push(b'\n');
            }
            out
        },
    )
}

fn small_config() -> JobConfig {
    JobConfig { map_workers: 3, reduce_workers: 2, split_bytes: 16, ..JobConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipeline_equals_original_for_any_text_and_chunk_size(
        data in arb_text(),
        chunk_bytes in 1u64..200,
    ) {
        let baseline = Job::new(WordCount).config(small_config()).run(Input::stream(MemSource::from(data.clone()))).unwrap();
        let mut config = small_config();
        config.chunking = Chunking::Inter { chunk_bytes };
        let piped = Job::new(WordCount).config(config).run(Input::stream(MemSource::from(data.clone()))).unwrap();
        prop_assert_eq!(piped.sorted_pairs(), baseline.sorted_pairs());
        prop_assert_eq!(piped.report.stats.bytes_ingested, data.len() as u64);
    }

    #[test]
    fn intra_pipeline_equals_original_for_any_file_grouping(
        files in vec(arb_text(), 0..10),
        files_per_chunk in 1usize..12,
    ) {
        let baseline = Job::new(WordCount).config(small_config()).run(Input::files(MemFileSet::new(files.clone()))).unwrap();
        let mut config = small_config();
        config.chunking = Chunking::Intra { files_per_chunk };
        let piped = Job::new(WordCount).config(config).run(Input::files(MemFileSet::new(files))).unwrap();
        prop_assert_eq!(piped.sorted_pairs(), baseline.sorted_pairs());
    }

    #[test]
    fn inter_chunker_is_a_lossless_partition(
        data in arb_text(),
        chunk_bytes in 1u64..100,
    ) {
        let mut chunker = InterFileChunker::new(
            MemSource::from(data.clone()),
            chunk_bytes,
            RecordFormat::Newline,
        );
        let mut rebuilt = Vec::new();
        let mut index = 0;
        while let Some(chunk) = chunker.next_chunk().unwrap() {
            prop_assert_eq!(chunk.index, index);
            prop_assert_eq!(chunk.offset as usize, rebuilt.len());
            prop_assert!(!chunk.data.is_empty());
            rebuilt.extend_from_slice(&chunk.data);
            index += 1;
        }
        prop_assert_eq!(rebuilt, data);
    }

    #[test]
    fn intra_chunker_is_a_lossless_partition(
        files in vec(arb_text(), 0..12),
        files_per_chunk in 1usize..6,
    ) {
        let mut chunker =
            IntraFileChunker::new(MemFileSet::new(files.clone()), files_per_chunk);
        let mut seen_files: Vec<Vec<u8>> = Vec::new();
        while let Some(chunk) = chunker.next_chunk().unwrap() {
            prop_assert!(chunk.segments.len() <= files_per_chunk);
            for seg in &chunk.segments {
                seen_files.push(chunk.data[seg.clone()].to_vec());
            }
        }
        prop_assert_eq!(seen_files, files);
    }

    #[test]
    fn pool_modes_produce_identical_results(
        data in arb_text(),
        chunk_bytes in 1u64..200,
    ) {
        // Persistent pool vs per-wave spawning: pure execution policy,
        // zero observable difference — on the original runtime and on
        // the chunked pipeline alike.
        for chunking in [Chunking::None, Chunking::Inter { chunk_bytes }] {
            let run = |pool: PoolMode| {
                let mut config = small_config();
                config.chunking = chunking;
                config.pool = pool;
                Job::new(WordCount).config(config).run(Input::stream(MemSource::from(data.clone()))).unwrap()
            };
            let wave = run(PoolMode::WavePerRound);
            let pooled = run(PoolMode::Persistent);
            prop_assert_eq!(pooled.sorted_pairs(), wave.sorted_pairs());
            prop_assert_eq!(pooled.report.stats.map_tasks, wave.report.stats.map_tasks);
            if !data.is_empty() {
                prop_assert!(pooled.report.stats.threads_reused > 0);
            }
        }
    }

    #[test]
    fn pool_modes_agree_on_file_sets(
        files in vec(arb_text(), 0..8),
        files_per_chunk in 1usize..5,
    ) {
        let run = |pool: PoolMode| {
            let mut config = small_config();
            config.chunking = Chunking::Intra { files_per_chunk };
            config.pool = pool;
            Job::new(WordCount).config(config).run(Input::files(MemFileSet::new(files.clone()))).unwrap()
        };
        let wave = run(PoolMode::WavePerRound);
        let pooled = run(PoolMode::Persistent);
        prop_assert_eq!(pooled.sorted_pairs(), wave.sorted_pairs());
    }

    #[test]
    fn merge_modes_are_observationally_equal(
        data in arb_text(),
        ways in 1usize..5,
    ) {
        let mut sorted_config = small_config();
        sorted_config.merge = MergeMode::PairwiseRounds;
        let a = Job::new(WordCount).config(sorted_config).run(Input::stream(MemSource::from(data.clone()))).unwrap();
        let mut pway_config = small_config();
        pway_config.merge = MergeMode::PWay { ways };
        let b = Job::new(WordCount).config(pway_config).run(Input::stream(MemSource::from(data))).unwrap();
        // Both fully sorted and identical (word count keys are unique
        // post-reduce, so ordering is total).
        prop_assert_eq!(&a.pairs, &b.pairs);
        prop_assert!(a.pairs.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

/// Arbitrary key bytes straddling both [`CompactKey`] representations
/// (the inline cap is 22, so 0..48 crosses the heap boundary often).
fn arb_key_bytes() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 0..48)
}

proptest! {
    #[test]
    fn compact_key_round_trips_and_orders_like_raw_bytes(
        a in arb_key_bytes(),
        b in arb_key_bytes(),
    ) {
        let ka = CompactKey::from_bytes(&a);
        let kb = CompactKey::from_bytes(&b);
        prop_assert_eq!(ka.as_bytes(), &a[..]);
        prop_assert_eq!(ka.len(), a.len());
        prop_assert_eq!(ka.is_heap(), a.len() > CompactKey::INLINE_CAP);
        prop_assert_eq!(ka == kb, a == b);
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }

    #[test]
    fn compact_key_hashes_exactly_like_string(
        bytes in vec(b' '..=b'~', 0..48),
    ) {
        // Same RandomState: a CompactKey must land in the bucket a
        // String key would, or borrowed-probe lookups silently miss.
        let s = String::from_utf8(bytes.clone()).unwrap();
        let state = RandomState::new();
        prop_assert_eq!(
            state.hash_one(CompactKey::from_bytes(&bytes)),
            state.hash_one(&s)
        );
    }

    #[test]
    fn borrowed_and_owned_emission_fill_identical_tables(
        words in vec(vec(b'a'..=b'd', 1..30), 0..60),
    ) {
        // emit_bytes (borrowed probe, key materialized on first insert)
        // and emit (owned key up front) must build the same table.
        let drain = |c: HashContainer<CompactKey, u64, Sum>| {
            let mut v: Vec<(CompactKey, u64)> =
                c.into_partitions(1).into_iter().flatten().collect();
            v.sort();
            v
        };
        let owned: HashContainer<CompactKey, u64, Sum> = HashContainer::new();
        let mut local = owned.local();
        for w in &words {
            local.emit(CompactKey::from_bytes(w), 1);
        }
        owned.absorb(local);
        let borrowed: HashContainer<CompactKey, u64, Sum> = HashContainer::new();
        let mut local = borrowed.local();
        for w in &words {
            local.emit_bytes(w, 1);
        }
        borrowed.absorb(local);
        prop_assert_eq!(drain(owned), drain(borrowed));
    }
}
