//! End-to-end runtime tests: the original runtime and the SupMR ingest
//! chunk pipeline must produce identical results for every application
//! shape, across chunk sizes, merge backends, and input edge cases. This
//! is the Fig. 2/Fig. 4 contract — the pipeline reorganizes *when* data
//! moves, never *what* is computed.

use supmr::api::{Emit, MapReduce};
use supmr::chunk::AdaptiveConfig;
use supmr::combiner::{Count, Identity, Sum};
use supmr::container::{ArrayContainer, HashContainer, UnlockedContainer};
use supmr::runtime::{Input, Job, JobConfig, MergeMode};
use supmr::{Chunking, PoolMode};
use supmr_storage::{MemFileSet, MemSource, RecordFormat};
use supmr_workloads::{small_files_corpus, TeraGen, TextGen, TextGenConfig, TERA_KEY_LEN};

// ---------------------------------------------------------------- jobs

struct WordCount;

impl MapReduce for WordCount {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        for word in split.split(|b| b.is_ascii_whitespace()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _key: &String, acc: u64) -> u64 {
        acc
    }
}

/// Terasort: unique 10-byte keys, unlocked container, sorted output.
struct Sort;

impl MapReduce for Sort {
    type Key = Vec<u8>;
    type Value = Vec<u8>;
    type Combiner = Identity;
    type Output = Vec<u8>;
    type Container = UnlockedContainer<Vec<u8>, Vec<u8>>;

    fn make_container(&self) -> Self::Container {
        UnlockedContainer::new()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<Vec<u8>, Vec<u8>>) {
        for rec in RecordFormat::CrLf.records(split) {
            if rec.len() >= TERA_KEY_LEN {
                emit.emit(rec[..TERA_KEY_LEN].to_vec(), rec.to_vec());
            }
        }
    }

    fn reduce(&self, _key: &Vec<u8>, value: Vec<u8>) -> Vec<u8> {
        value
    }
}

/// Histogram over byte values: dense usize keys, array container.
struct ByteHistogram;

impl MapReduce for ByteHistogram {
    type Key = usize;
    type Value = u8;
    type Combiner = Count;
    type Output = u64;
    type Container = ArrayContainer<u8, Count>;

    fn make_container(&self) -> Self::Container {
        ArrayContainer::new(256)
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<usize, u8>) {
        for &b in split {
            emit.emit(b as usize, b);
        }
    }

    fn reduce(&self, _key: &usize, count: u64) -> u64 {
        count
    }
}

// ------------------------------------------------------------- helpers

fn base_config() -> JobConfig {
    JobConfig { map_workers: 4, reduce_workers: 4, split_bytes: 512, ..JobConfig::default() }
}

fn text_input(bytes: usize) -> Vec<u8> {
    TextGen::new(TextGenConfig { vocabulary: 200, exponent: 1.0, line_len: 60 })
        .generate_bytes(11, bytes)
}

// --------------------------------------------------------------- tests

#[test]
fn wordcount_pipeline_equals_original_across_chunk_sizes() {
    let data = text_input(20_000);
    let baseline = Job::new(WordCount)
        .config(base_config())
        .run(Input::stream(MemSource::from(data.clone())))
        .unwrap();
    assert!(baseline.report.stats.ingest_chunks == 1 && baseline.report.stats.map_rounds == 1);

    for chunk_bytes in [256u64, 1000, 4096, 100_000] {
        let mut config = base_config();
        config.chunking = Chunking::Inter { chunk_bytes };
        let piped = Job::new(WordCount)
            .config(config)
            .run(Input::stream(MemSource::from(data.clone())))
            .unwrap();
        assert_eq!(piped.sorted_pairs(), baseline.sorted_pairs(), "chunk_bytes = {chunk_bytes}");
        assert_eq!(piped.report.stats.intermediate_pairs, baseline.report.stats.intermediate_pairs);
        assert_eq!(piped.report.stats.bytes_ingested, data.len() as u64);
        if chunk_bytes < data.len() as u64 {
            assert!(piped.report.stats.ingest_chunks > 1);
            assert_eq!(piped.report.stats.map_rounds, piped.report.stats.ingest_chunks);
            assert!(piped.report.timings.is_fused());
        }
    }
}

#[test]
fn wordcount_counts_are_exact() {
    // Hand-checkable input.
    let data = b"apple pear apple\nplum apple pear\n".to_vec();
    let result = Job::new(WordCount)
        .config(base_config())
        .run(Input::stream(MemSource::from(data)))
        .unwrap();
    assert_eq!(
        result.sorted_pairs(),
        vec![("apple".to_string(), 3), ("pear".to_string(), 2), ("plum".to_string(), 1)]
    );
    assert_eq!(result.report.stats.intermediate_pairs, 6);
    assert_eq!(result.report.stats.distinct_keys, 3);
    assert_eq!(result.report.stats.output_pairs, 3);
}

#[test]
fn intra_file_pipeline_equals_original_on_file_sets() {
    let files = small_files_corpus(3, 13, 700);
    let baseline = Job::new(WordCount)
        .config(base_config())
        .run(Input::files(MemFileSet::new(files.clone())))
        .unwrap();

    for files_per_chunk in [1usize, 4, 13, 50] {
        let mut config = base_config();
        config.chunking = Chunking::Intra { files_per_chunk };
        let piped = Job::new(WordCount)
            .config(config)
            .run(Input::files(MemFileSet::new(files.clone())))
            .unwrap();
        assert_eq!(
            piped.sorted_pairs(),
            baseline.sorted_pairs(),
            "files_per_chunk = {files_per_chunk}"
        );
        let expected_chunks = 13_usize.div_ceil(files_per_chunk);
        assert_eq!(piped.report.stats.ingest_chunks as usize, expected_chunks);
    }
}

#[test]
fn sort_produces_globally_sorted_output_on_both_runtimes_and_merges() {
    let gen = TeraGen::new(21, 300);
    let data = gen.generate_all();

    let run = |chunking: Chunking, merge: MergeMode| {
        let mut config = base_config();
        config.record_format = RecordFormat::CrLf;
        config.split_bytes = 1000;
        config.chunking = chunking;
        config.merge = merge;
        Job::new(Sort).config(config).run(Input::stream(MemSource::from(data.clone()))).unwrap()
    };

    let baseline = run(Chunking::None, MergeMode::PairwiseRounds);
    let supmr = run(Chunking::Inter { chunk_bytes: 5000 }, MergeMode::PWay { ways: 4 });

    // Both sorted, same multiset.
    for r in [&baseline, &supmr] {
        assert_eq!(r.pairs.len(), 300);
        assert!(r.pairs.windows(2).all(|w| w[0].0 <= w[1].0), "output must be sorted");
    }
    assert_eq!(
        baseline.pairs.iter().map(|p| &p.0).collect::<Vec<_>>(),
        supmr.pairs.iter().map(|p| &p.0).collect::<Vec<_>>()
    );

    // The headline merge-work claim: pairwise rounds re-scan, p-way does
    // a single pass.
    assert!(baseline.report.stats.merge_rounds >= 2);
    assert_eq!(supmr.report.stats.merge_rounds, 1);
    assert!(baseline.report.stats.merge_elements_moved > supmr.report.stats.merge_elements_moved);
    assert_eq!(supmr.report.stats.merge_elements_moved, 300);
}

#[test]
fn histogram_on_array_container_both_runtimes() {
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    let mut config = base_config();
    config.record_format = RecordFormat::None;
    let baseline = Job::new(ByteHistogram)
        .config(config.clone())
        .run(Input::stream(MemSource::from(data.clone())))
        .unwrap();
    config.chunking = Chunking::Inter { chunk_bytes: 777 };
    let piped =
        Job::new(ByteHistogram).config(config).run(Input::stream(MemSource::from(data))).unwrap();
    assert_eq!(baseline.sorted_pairs(), piped.sorted_pairs());
    let total: u64 = baseline.pairs.iter().map(|(_, c)| c).sum();
    assert_eq!(total, 10_000);
    assert_eq!(baseline.report.stats.distinct_keys, 251);
}

#[test]
fn empty_inputs_produce_empty_results() {
    let r = Job::new(WordCount)
        .config(base_config())
        .run(Input::stream(MemSource::from(Vec::new())))
        .unwrap();
    assert!(r.pairs.is_empty());
    assert_eq!(r.report.stats.bytes_ingested, 0);

    let mut config = base_config();
    config.chunking = Chunking::Inter { chunk_bytes: 64 };
    let r =
        Job::new(WordCount).config(config).run(Input::stream(MemSource::from(Vec::new()))).unwrap();
    assert!(r.pairs.is_empty());
    assert_eq!(r.report.stats.ingest_chunks, 0);

    let mut config = base_config();
    config.chunking = Chunking::Intra { files_per_chunk: 3 };
    let r = Job::new(WordCount).config(config).run(Input::files(MemFileSet::new(vec![]))).unwrap();
    assert!(r.pairs.is_empty());
}

#[test]
fn single_record_larger_than_chunk_size() {
    // One 5KB line with 100-byte chunks: the chunker must deliver the
    // whole record in one chunk and the job must still count correctly.
    let mut data = vec![b'x'; 5000];
    data.push(b'\n');
    data.extend_from_slice(b"tail word\n");
    let mut config = base_config();
    config.chunking = Chunking::Inter { chunk_bytes: 100 };
    let r = Job::new(WordCount).config(config).run(Input::stream(MemSource::from(data))).unwrap();
    let pairs = r.sorted_pairs();
    assert_eq!(pairs.len(), 3); // "x...x", "tail", "word"
    assert!(pairs.iter().any(|(k, c)| k == "tail" && *c == 1));
}

#[test]
fn mismatched_chunking_and_input_shape_is_an_error() {
    let mut config = base_config();
    config.chunking = Chunking::Intra { files_per_chunk: 2 };
    let err = Job::new(WordCount)
        .config(config)
        .run(Input::stream(MemSource::from(vec![1u8])))
        .expect_err("stream input with intra-file chunking must fail");
    assert!(matches!(err, supmr::SupmrError::InvalidConfig { .. }), "{err:?}");

    let mut config = base_config();
    config.chunking = Chunking::Inter { chunk_bytes: 64 };
    let err = Job::new(WordCount)
        .config(config)
        .run(Input::files(MemFileSet::new(vec![])))
        .expect_err("file input with inter-file chunking must fail");
    assert!(matches!(err, supmr::SupmrError::InvalidConfig { .. }), "{err:?}");
}

#[test]
fn invalid_configs_are_rejected_before_running() {
    for config in [
        JobConfig { map_workers: 0, ..base_config() },
        JobConfig { split_bytes: 0, ..base_config() },
        JobConfig { chunking: Chunking::Inter { chunk_bytes: 0 }, ..base_config() },
        JobConfig { merge: MergeMode::PWay { ways: 0 }, ..base_config() },
    ] {
        assert!(Job::new(WordCount)
            .config(config)
            .run(Input::stream(MemSource::from(vec![1u8])))
            .is_err());
    }
}

#[test]
fn pipeline_counts_rounds_and_threads() {
    let data = text_input(10_000);
    let mut config = base_config();
    config.chunking = Chunking::Inter { chunk_bytes: 1000 };
    let r = Job::new(WordCount).config(config).run(Input::stream(MemSource::from(data))).unwrap();
    assert!(r.report.stats.ingest_chunks >= 9);
    assert_eq!(r.report.stats.map_rounds, r.report.stats.ingest_chunks);
    // Threads: at least one ingest thread per round plus map waves.
    assert!(r.report.stats.threads_spawned as u32 >= 2 * r.report.stats.map_rounds);
    assert!(r.report.stats.map_tasks >= r.report.stats.map_rounds as u64);
}

#[test]
fn persistent_pool_matches_wave_per_round_on_streams() {
    // Both pool modes must compute byte-identical results for every
    // stream chunking strategy and both runtimes (None = original).
    let data = text_input(20_000);
    let strategies = [
        Chunking::None,
        Chunking::Inter { chunk_bytes: 1000 },
        Chunking::Inter { chunk_bytes: 4096 },
        Chunking::Adaptive(AdaptiveConfig::default()),
    ];
    for chunking in strategies {
        let run = |pool: PoolMode| {
            let mut config = base_config();
            config.chunking = chunking;
            config.pool = pool;
            Job::new(WordCount)
                .config(config)
                .run(Input::stream(MemSource::from(data.clone())))
                .unwrap()
        };
        let wave = run(PoolMode::WavePerRound);
        let pooled = run(PoolMode::Persistent);
        assert_eq!(pooled.sorted_pairs(), wave.sorted_pairs(), "chunking = {chunking:?}");
        assert_eq!(pooled.report.stats.map_tasks, wave.report.stats.map_tasks);
        assert_eq!(pooled.report.stats.bytes_ingested, wave.report.stats.bytes_ingested);
        assert_eq!(wave.report.stats.threads_reused, 0, "waves never reuse threads");
        assert!(
            pooled.report.stats.threads_reused > 0,
            "pooled job must report reused threads (chunking = {chunking:?})"
        );
    }
}

#[test]
fn persistent_pool_matches_wave_per_round_on_file_sets() {
    let files = small_files_corpus(7, 11, 600);
    for chunking in [
        Chunking::None,
        Chunking::Intra { files_per_chunk: 2 },
        Chunking::Hybrid { chunk_bytes: 2000 },
    ] {
        let run = |pool: PoolMode| {
            let mut config = base_config();
            config.chunking = chunking;
            config.pool = pool;
            Job::new(WordCount)
                .config(config)
                .run(Input::files(MemFileSet::new(files.clone())))
                .unwrap()
        };
        let wave = run(PoolMode::WavePerRound);
        let pooled = run(PoolMode::Persistent);
        assert_eq!(pooled.sorted_pairs(), wave.sorted_pairs(), "chunking = {chunking:?}");
        assert!(pooled.report.stats.threads_reused > 0);
    }
}

#[test]
fn persistent_pool_matches_wave_for_sort_merges_and_prefetch() {
    let data = TeraGen::new(33, 400).generate_all();
    for merge in [MergeMode::PairwiseRounds, MergeMode::PWay { ways: 4 }] {
        for prefetch_depth in [1usize, 4] {
            let run = |pool: PoolMode| {
                let mut config = base_config();
                config.record_format = RecordFormat::CrLf;
                config.split_bytes = 1000;
                config.chunking = Chunking::Inter { chunk_bytes: 5000 };
                config.merge = merge;
                config.prefetch_depth = prefetch_depth;
                config.pool = pool;
                Job::new(Sort)
                    .config(config)
                    .run(Input::stream(MemSource::from(data.clone())))
                    .unwrap()
            };
            let wave = run(PoolMode::WavePerRound);
            let pooled = run(PoolMode::Persistent);
            assert_eq!(pooled.pairs, wave.pairs, "merge = {merge:?}, prefetch = {prefetch_depth}");
            assert!(pooled.report.stats.threads_reused > 0);
        }
    }
}

#[test]
fn persistent_pool_spawns_once_per_job() {
    // A multi-chunk job: wave mode pays a spawn per wave per round,
    // persistent mode pays the pool once plus per-round ingest threads.
    let data = text_input(20_000);
    let run = |pool: PoolMode| {
        let mut config = base_config();
        config.chunking = Chunking::Inter { chunk_bytes: 1000 };
        config.pool = pool;
        Job::new(WordCount)
            .config(config)
            .run(Input::stream(MemSource::from(data.clone())))
            .unwrap()
    };
    let wave = run(PoolMode::WavePerRound);
    let pooled = run(PoolMode::Persistent);
    assert!(wave.report.stats.ingest_chunks > 5);
    assert!(
        pooled.report.stats.threads_spawned < wave.report.stats.threads_spawned,
        "pool must spawn fewer threads ({} vs {})",
        pooled.report.stats.threads_spawned,
        wave.report.stats.threads_spawned
    );
    // Pool size (4) + one ingest thread per round.
    assert_eq!(pooled.report.stats.threads_spawned, 4 + u64::from(pooled.report.stats.map_rounds));
}

#[test]
fn persistent_pool_handles_empty_input() {
    let mut config = base_config();
    config.pool = PoolMode::Persistent;
    let r =
        Job::new(WordCount).config(config).run(Input::stream(MemSource::from(Vec::new()))).unwrap();
    assert!(r.pairs.is_empty());

    let mut config = base_config();
    config.pool = PoolMode::Persistent;
    config.chunking = Chunking::Inter { chunk_bytes: 64 };
    let r =
        Job::new(WordCount).config(config).run(Input::stream(MemSource::from(Vec::new()))).unwrap();
    assert!(r.pairs.is_empty());
}

#[test]
fn merge_modes_agree_on_content() {
    let gen = TeraGen::new(5, 200);
    let data = gen.generate_all();
    let mut keys_by_mode = Vec::new();
    for merge in [MergeMode::Unsorted, MergeMode::PairwiseRounds, MergeMode::PWay { ways: 3 }] {
        let mut config = base_config();
        config.record_format = RecordFormat::CrLf;
        config.merge = merge;
        let r = Job::new(Sort)
            .config(config)
            .run(Input::stream(MemSource::from(data.clone())))
            .unwrap();
        let mut keys: Vec<Vec<u8>> = r.pairs.into_iter().map(|(k, _)| k).collect();
        if matches!(merge, MergeMode::Unsorted) {
            keys.sort();
        }
        keys_by_mode.push(keys);
    }
    assert_eq!(keys_by_mode[0], keys_by_mode[1]);
    assert_eq!(keys_by_mode[1], keys_by_mode[2]);
}

#[test]
fn utilization_sampling_attaches_a_trace() {
    let data = text_input(30_000);
    let mut config = base_config();
    config.sample_utilization = Some(std::time::Duration::from_millis(5));
    let r = Job::new(WordCount).config(config).run(Input::stream(MemSource::from(data))).unwrap();
    let trace = r.report.util.expect("trace requested");
    if std::path::Path::new("/proc/stat").exists() {
        // The job may be too fast for many samples, but the plumbing
        // must deliver a well-formed trace object.
        for s in trace.samples() {
            assert!(s.total() <= 100.0 + 1e-6);
        }
    }
}
