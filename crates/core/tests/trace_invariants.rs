//! Property and integration tests of the event-trace invariants:
//! sequence stamps are monotonic per thread, spans nest and always
//! close, stall + busy time accounts for each round's wall time, and
//! the stall accounting distinguishes a throttled source from an
//! unthrottled one. Exercised over random chunkings and both pool
//! modes, at both trace levels.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;
use supmr::api::{Emit, MapReduce};
use supmr::combiner::Sum;
use supmr::container::HashContainer;
use supmr::runtime::{Input, Job, JobConfig, JobResult};
use supmr::{Chunking, PoolMode, TraceLevel};
use supmr_metrics::chrome::to_chrome_json;
use supmr_metrics::{JobTrace, Json, SpanKey};
use supmr_storage::{MemSource, ThrottledSource, TokenBucket};
use supmr_workloads::{TextGen, TextGenConfig};

struct WordCount;

impl MapReduce for WordCount {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        for word in split.split(|b| b.is_ascii_whitespace()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _key: &String, acc: u64) -> u64 {
        acc
    }
}

fn traced_config(chunk_bytes: u64, pool: PoolMode, level: TraceLevel) -> JobConfig {
    JobConfig {
        map_workers: 3,
        reduce_workers: 2,
        split_bytes: 2048,
        chunking: Chunking::Inter { chunk_bytes },
        pool,
        trace: level,
        ..JobConfig::default()
    }
}

fn text(bytes: usize) -> Vec<u8> {
    TextGen::new(TextGenConfig::default()).generate_bytes(11, bytes)
}

/// Assert the invariants the satellite names, explicitly (not only via
/// `JobTrace::validate`, which the runtime itself relies on).
fn assert_structural_invariants(trace: &JobTrace) {
    trace.validate().expect("trace must validate");

    // Sequence stamps strictly increase within each thread, and are
    // globally unique across threads.
    let mut seen = std::collections::HashSet::new();
    for t in &trace.threads {
        for pair in t.events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "per-thread seqs must be strictly increasing");
            assert!(pair[0].t_us <= pair[1].t_us, "per-thread time must not go backwards");
        }
        for e in &t.events {
            assert!(seen.insert(e.seq), "seq {} appears twice", e.seq);
        }
    }

    // Every Start has exactly one End with the same key.
    let mut opens: HashMap<SpanKey, i64> = HashMap::new();
    for e in trace.ordered_events() {
        if let Some(key) = e.kind.span_open() {
            *opens.entry(key).or_insert(0) += 1;
        }
        if let Some(key) = e.kind.span_close() {
            *opens.entry(key).or_insert(0) -= 1;
        }
    }
    for (key, balance) in &opens {
        assert_eq!(*balance, 0, "{key:?}: starts and ends must balance");
    }

    // The span extractor pairs them all (nothing dropped as unclosed).
    let span_keys: std::collections::HashSet<SpanKey> =
        trace.spans().iter().map(|s| s.key).collect();
    assert_eq!(span_keys.len(), opens.len(), "every opened key must yield a span");
}

/// Random newline-framed text with frequent word collisions.
fn arb_text() -> impl Strategy<Value = Vec<u8>> {
    vec(vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'x'), Just(b' ')], 0..40), 1..60).prop_map(
        |lines| {
            let mut out = Vec::new();
            for l in lines {
                out.extend_from_slice(&l);
                out.push(b'\n');
            }
            out
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary inputs, chunk sizes, pool modes, and trace levels:
    /// the trace is structurally sound, tracing does not perturb
    /// results, and busy + stall time never exceeds the traced wall
    /// time.
    #[test]
    fn traced_runs_satisfy_structural_invariants(
        data in arb_text(),
        chunk_kb in 1u64..8,
        persistent in any::<bool>(),
        task_level in any::<bool>(),
    ) {
        let pool = if persistent { PoolMode::Persistent } else { PoolMode::WavePerRound };
        let level = if task_level { TraceLevel::Task } else { TraceLevel::Wave };
        let cfg = traced_config(chunk_kb * 1024, pool, level);

        let mut untraced_cfg = cfg.clone();
        untraced_cfg.trace = TraceLevel::Off;
        let untraced =
            Job::new(WordCount).config(untraced_cfg).run(Input::stream(MemSource::from(data.clone())))
                .unwrap();

        let traced = Job::new(WordCount).config(cfg).run(Input::stream(MemSource::from(data))).unwrap();
        prop_assert_eq!(traced.sorted_pairs(), untraced.sorted_pairs());

        let trace = traced.report.trace.as_ref().expect("traced run must attach a trace");
        assert_structural_invariants(trace);

        // Busy + stall can never exceed the traced wall time (the
        // other direction — coverage — needs throttled, ms-scale
        // rounds and is asserted below).
        let events = trace.ordered_events();
        if let (Some(first), Some(last)) = (events.first(), events.last()) {
            let wall = Duration::from_micros(last.t_us - first.t_us);
            let stalls = trace.stall_totals();
            let map_busy: Duration = trace
                .rounds()
                .iter()
                .map(|r| r.map)
                .sum();
            let slop = Duration::from_millis(2);
            prop_assert!(
                map_busy + stalls.map_waiting <= wall + slop,
                "map busy {map_busy:?} + stall {:?} exceeds wall {wall:?}",
                stalls.map_waiting
            );
        }

        // Task-level traces additionally carry per-task spans.
        if level.tasks() {
            let has_task_span =
                trace.spans().iter().any(|s| matches!(s.key, SpanKey::MapTask(_, _)));
            prop_assert!(has_task_span, "task level must record map task spans");
        }
    }
}

/// Run word count over a throttled in-memory source with wave tracing.
/// The bucket's burst is kept tiny so pacing is real from the first
/// read (the default burst would let a small test input through in one
/// gulp).
fn throttled_run(bytes: usize, chunk_bytes: u64, rate: f64) -> JobResult<String, u64> {
    let cfg = traced_config(chunk_bytes, PoolMode::WavePerRound, TraceLevel::Wave);
    let bucket = TokenBucket::with_burst(rate, 4096.0);
    let src = ThrottledSource::with_bucket(MemSource::from(text(bytes)), bucket);
    Job::new(WordCount).config(cfg).run(Input::stream(src)).unwrap()
}

/// Per round, the map side's busy + stall time must account for the
/// round's wall clock (window between consecutive wave starts). Uses a
/// throttled source so rounds are ms-scale and bookkeeping overhead is
/// proportionally negligible.
#[test]
fn stall_plus_busy_accounts_for_round_wall_time() {
    let result = throttled_run(128 * 1024, 16 * 1024, 4.0 * 1024.0 * 1024.0);
    let trace = result.report.trace.as_ref().unwrap();
    assert_structural_invariants(trace);

    let mut waves: Vec<_> = trace
        .spans()
        .into_iter()
        .filter_map(|s| match s.key {
            SpanKey::MapWave(r) => Some((r, s.start_us, s.dur_us)),
            _ => None,
        })
        .collect();
    waves.sort_by_key(|&(r, _, _)| r);
    assert!(waves.len() >= 3, "expected several rounds, got {}", waves.len());

    let rounds = trace.rounds();
    let mut windows = Duration::ZERO;
    let mut accounted = Duration::ZERO;
    for pair in waves.windows(2) {
        let (round, start_us, dur_us) = pair[0];
        let window = Duration::from_micros(pair[1].1 - start_us);
        let busy = Duration::from_micros(dur_us);
        let stall = rounds[round as usize].map_wait;
        // Accounted time never exceeds the window (small slop for the
        // stall being measured on a different thread than the spans).
        assert!(
            busy + stall <= window + Duration::from_millis(2),
            "round {round}: busy {busy:?} + stall {stall:?} > window {window:?}"
        );
        windows += window;
        accounted += busy + stall;
    }
    // ... and covers the great majority of it: the only unaccounted
    // time is per-round bookkeeping (chunk splitting, container
    // handoff), which is microseconds against ms-scale rounds.
    assert!(
        accounted >= windows.mul_f64(0.6),
        "busy + stall {accounted:?} covers too little of {windows:?}"
    );
}

/// The acceptance criterion: summed `MapWaitingForChunk` stall time in
/// the report differs measurably between a throttled and an
/// unthrottled source.
#[test]
fn throttled_source_stalls_the_map_side_measurably() {
    // 2 MiB/s: each 32 KiB chunk takes ~16 ms to ingest while mapping
    // it takes well under a millisecond — every round is ingest-bound.
    let throttled = throttled_run(192 * 1024, 32 * 1024, 2.0 * 1024.0 * 1024.0);

    let cfg = traced_config(32 * 1024, PoolMode::WavePerRound, TraceLevel::Wave);
    let unthrottled = Job::new(WordCount)
        .config(cfg)
        .run(Input::stream(MemSource::from(text(192 * 1024))))
        .unwrap();

    let slow = throttled.report.stalls().map_waiting;
    let fast = unthrottled.report.stalls().map_waiting;
    assert!(slow >= Duration::from_millis(20), "throttled map stall too small: {slow:?}");
    assert!(
        slow >= fast * 4 + Duration::from_millis(10),
        "throttled stall {slow:?} not measurably above unthrottled {fast:?}"
    );

    // The trace's own stall accounting agrees with the report's.
    let traced_stall = throttled.report.trace.as_ref().unwrap().stall_totals().map_waiting;
    assert!(
        traced_stall >= Duration::from_millis(20),
        "trace stall total too small: {traced_stall:?}"
    );
}

/// The Chrome export of a traced run parses as JSON, carries one
/// complete (`"X"`) event per paired span — each with `ts` and `dur` —
/// plus thread metadata, and at least one stall event when the source
/// is throttled.
#[test]
fn chrome_export_parses_and_carries_stalls() {
    let result = throttled_run(96 * 1024, 16 * 1024, 4.0 * 1024.0 * 1024.0);
    let trace = result.report.trace.as_ref().unwrap();

    let value = Json::parse(&to_chrome_json(trace)).expect("chrome export must be valid JSON");
    let events = value
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("chrome export must carry a traceEvents array");
    assert!(!events.is_empty());

    let ph = |e: &Json| e.get("ph").and_then(Json::as_str).map(String::from);
    let spans: Vec<&Json> = events.iter().filter(|e| ph(e).as_deref() == Some("X")).collect();
    let stall_count =
        events.iter().filter(|e| e.get("cat").and_then(Json::as_str) == Some("stall")).count();
    // Spans are exported pre-paired: one X event per (span + stall).
    assert_eq!(spans.len(), trace.spans().len() + stall_count);
    for span in &spans {
        assert!(span.get("ts").and_then(Json::as_f64).is_some(), "X event needs ts");
        assert!(span.get("dur").and_then(Json::as_f64).is_some(), "X event needs dur");
    }
    assert!(
        events.iter().any(|e| ph(e).as_deref() == Some("M")),
        "thread-name metadata must be present"
    );
    assert!(stall_count > 0, "a throttled run must export at least one stall event");
}
