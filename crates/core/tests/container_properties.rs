//! Property tests for the containers: whatever batches are absorbed,
//! from however many concurrent workers, the drained partitions must be
//! exactly the combined multiset — containers may reorganize data, never
//! create, drop, or double-count it.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use supmr::api::Emit;
use supmr::combiner::{Buffer, Count, Sum};
use supmr::container::{ArrayContainer, Container, HashContainer, UnlockedContainer};

type Batch = Vec<(u8, u16)>;

fn arb_batches() -> impl Strategy<Value = Vec<Batch>> {
    vec(vec((any::<u8>(), any::<u16>()), 0..60), 0..8)
}

/// Key distributions the sharded shuffle path must survive: arbitrary
/// mixes, the all-keys-collide extreme (every pair fights over one
/// shard entry), and the all-keys-unique extreme (no combining, maximal
/// shard-map growth).
fn arb_shaped_batches() -> impl Strategy<Value = Vec<Vec<(u32, u16)>>> {
    let arbitrary = vec(vec((0u32..64, any::<u16>()), 0..60), 0..8);
    let all_collide = (any::<u32>(), vec(vec(any::<u16>(), 0..60), 0..8)).prop_map(
        |(k, bs)| -> Vec<Vec<(u32, u16)>> {
            bs.into_iter().map(|vs| vs.into_iter().map(|v| (k, v)).collect()).collect()
        },
    );
    let all_unique = vec(0usize..60, 0..8).prop_map(|lens| -> Vec<Vec<(u32, u16)>> {
        let mut next = 0u32;
        lens.into_iter()
            .map(|n| {
                (0..n)
                    .map(|_| {
                        next += 1;
                        (next, 1u16)
                    })
                    .collect()
            })
            .collect()
    });
    prop_oneof![arbitrary, all_collide, all_unique]
}

/// Reference model: a plain `BTreeMap` fold of the same batches.
fn btree_sums(batches: &[Vec<(u32, u16)>]) -> BTreeMap<u32, u64> {
    let mut m: BTreeMap<u32, u64> = BTreeMap::new();
    for b in batches {
        for &(k, v) in b {
            *m.entry(k).or_default() += u64::from(v);
        }
    }
    m
}

/// Reference: fold all batches with a plain map.
fn reference_sums(batches: &[Batch]) -> HashMap<u8, u64> {
    let mut m: HashMap<u8, u64> = HashMap::new();
    for b in batches {
        for &(k, v) in b {
            *m.entry(k).or_default() += v as u64;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_container_sum_equals_reference(batches in arb_batches(), parts in 1usize..6) {
        let c: HashContainer<u8, u64, Sum> = HashContainer::new();
        std::thread::scope(|s| {
            for batch in &batches {
                let c = &c;
                s.spawn(move || {
                    let mut local = c.local();
                    for &(k, v) in batch {
                        local.emit(k, v as u64);
                    }
                    c.absorb(local);
                });
            }
        });
        let expected = reference_sums(&batches);
        prop_assert_eq!(c.distinct_keys(), expected.len());
        let drained: HashMap<u8, u64> =
            c.into_partitions(parts).into_iter().flatten().collect();
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn hash_container_buffer_preserves_multiset(batches in arb_batches()) {
        let c: HashContainer<u8, u16, Buffer> = HashContainer::new();
        for batch in &batches {
            let mut local = c.local();
            for &(k, v) in batch {
                local.emit(k, v);
            }
            c.absorb(local);
        }
        let mut drained: Vec<(u8, u16)> = c
            .into_partitions(3)
            .into_iter()
            .flatten()
            .flat_map(|(k, vs)| vs.into_iter().map(move |v| (k, v)))
            .collect();
        let mut expected: Vec<(u8, u16)> =
            batches.iter().flatten().copied().collect();
        drained.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn array_container_counts_equal_reference(batches in arb_batches(), parts in 1usize..6) {
        let c: ArrayContainer<u16, Count> = ArrayContainer::new(256);
        for batch in &batches {
            let mut local = c.local();
            for &(k, v) in batch {
                local.emit(k as usize, v);
            }
            c.absorb(local);
        }
        let expected: HashMap<usize, u64> = {
            let mut m: HashMap<usize, u64> = HashMap::new();
            for b in &batches {
                for &(k, _) in b {
                    *m.entry(k as usize).or_default() += 1;
                }
            }
            m
        };
        let parts = c.into_partitions(parts);
        // Array partitions come out key-ordered.
        let keys: Vec<usize> = parts.iter().flatten().map(|(k, _)| *k).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let drained: HashMap<usize, u64> = parts.into_iter().flatten().collect();
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn sharded_hash_matches_btreemap_reference(
        batches in arb_shaped_batches(),
        parts in 1usize..9,
        seed in proptest::option::of(any::<u64>()),
    ) {
        let c: HashContainer<u32, u64, Sum> = match seed {
            Some(s) => HashContainer::with_seed(s),
            None => HashContainer::new(),
        };
        std::thread::scope(|s| {
            for batch in &batches {
                let c = &c;
                s.spawn(move || {
                    let mut local = c.local();
                    for &(k, v) in batch {
                        local.emit(k, u64::from(v));
                    }
                    c.absorb(local);
                });
            }
        });
        let expected = btree_sums(&batches);
        prop_assert_eq!(c.distinct_keys(), expected.len());
        // Every key lands in exactly one partition, exactly once, with
        // the reference accumulator — identical reduce inputs.
        let mut seen: BTreeMap<u32, u64> = BTreeMap::new();
        for part in c.into_partitions(parts) {
            prop_assert!(!part.is_empty(), "empty partitions must be dropped");
            for (k, v) in part {
                prop_assert!(seen.insert(k, v).is_none(), "key split across partitions");
            }
        }
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn array_matches_btreemap_reference(
        batches in arb_shaped_batches(),
        parts in 1usize..9,
    ) {
        // Same distributions, keys masked into the dense universe.
        let c: ArrayContainer<u64, Sum> = ArrayContainer::new(64);
        std::thread::scope(|s| {
            for batch in &batches {
                let c = &c;
                s.spawn(move || {
                    let mut local = c.local();
                    for &(k, v) in batch {
                        local.emit(k as usize % 64, u64::from(v));
                    }
                    c.absorb(local);
                });
            }
        });
        let masked: Vec<Vec<(u32, u16)>> = batches
            .iter()
            .map(|b| b.iter().map(|&(k, v)| (k % 64, v)).collect())
            .collect();
        let expected = btree_sums(&masked);
        prop_assert_eq!(c.distinct_keys(), expected.len());
        let mut seen: BTreeMap<u32, u64> = BTreeMap::new();
        for part in c.into_partitions(parts) {
            prop_assert!(!part.is_empty(), "empty partitions must be dropped");
            for (k, v) in part {
                prop_assert!(seen.insert(k as u32, v).is_none(), "key split across partitions");
            }
        }
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn unlocked_container_preserves_runs_verbatim(batches in arb_batches()) {
        let c: UnlockedContainer<u8, u16> = UnlockedContainer::new();
        for batch in &batches {
            let mut local = <UnlockedContainer<u8, u16> as Container<
                u8,
                u16,
                supmr::combiner::Identity,
            >>::local(&c);
            for &(k, v) in batch {
                local.emit(k, v);
            }
            <UnlockedContainer<u8, u16> as Container<u8, u16, supmr::combiner::Identity>>::absorb(
                &c, local,
            );
        }
        let non_empty: Vec<&Batch> = batches.iter().filter(|b| !b.is_empty()).collect();
        prop_assert_eq!(c.run_count(), non_empty.len());
        let parts = <UnlockedContainer<u8, u16> as Container<
            u8,
            u16,
            supmr::combiner::Identity,
        >>::into_partitions(c, 1);
        // Sequential absorbs preserve batch order and contents exactly.
        prop_assert_eq!(parts.len(), non_empty.len());
        for (run, batch) in parts.iter().zip(non_empty) {
            prop_assert_eq!(run, batch);
        }
    }
}
