//! Out-of-core execution: jobs run under a memory budget must spill,
//! produce output identical to an unbounded run, surface spill-run I/O
//! faults as typed errors (never panics or hangs), and leave no run
//! files behind — on success, failure, or task panic.

use proptest::collection::vec;
use proptest::prelude::*;
use std::io::ErrorKind;
use std::sync::Arc;
use supmr::api::{Emit, MapReduce};
use supmr::combiner::{Identity, Sum};
use supmr::container::{HashContainer, UnlockedContainer};
use supmr::runtime::{Input, Job, JobConfig, MergeMode};
use supmr::{Chunking, PairCodec, SupmrError};
use supmr_storage::{FaultyRunStore, MemRunStore, MemSource};

/// WordCount with a spill codec: `u32 LE` word length, word, `u64 LE`
/// count. Folding container, so spilled runs keep folding on merge.
struct SpillingWordCount;

impl MapReduce for SpillingWordCount {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        for word in split.split(|b| b.is_ascii_whitespace()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _k: &String, acc: u64) -> u64 {
        acc
    }

    fn spill_codec(&self) -> Option<PairCodec<String, u64>> {
        fn encode(key: &String, count: &u64, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
            buf.extend_from_slice(key.as_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
        }
        fn decode(rec: &[u8]) -> Option<(String, u64)> {
            let klen = u32::from_le_bytes(rec.get(..4)?.try_into().ok()?) as usize;
            let key = String::from_utf8(rec.get(4..4 + klen)?.to_vec()).ok()?;
            let count = u64::from_le_bytes(rec.get(4 + klen..4 + klen + 8)?.try_into().ok()?);
            (rec.len() == 4 + klen + 8).then_some((key, count))
        }
        // `&String` is forced by `PairCodec`'s fn-pointer signature.
        #[allow(clippy::ptr_arg)]
        fn size_hint(key: &String, _count: &u64) -> usize {
            std::mem::size_of::<String>() + key.len() + 8
        }
        Some(PairCodec { encode, decode, size_hint })
    }
}

/// WordCount without a codec, for the must-reject configuration test.
struct CodeclessWordCount;

impl MapReduce for CodeclessWordCount {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        for word in split.split(|b| b.is_ascii_whitespace()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _k: &String, acc: u64) -> u64 {
        acc
    }
}

/// A tiny identity-combined sorter over newline records (key = first 3
/// bytes), exercising the unlocked container's spill path, which must
/// NOT fold duplicate keys across runs.
struct MiniSort;

impl MapReduce for MiniSort {
    type Key = Vec<u8>;
    type Value = Vec<u8>;
    type Combiner = Identity;
    type Output = Vec<u8>;
    type Container = UnlockedContainer<Vec<u8>, Vec<u8>>;

    fn make_container(&self) -> Self::Container {
        UnlockedContainer::new()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<Vec<u8>, Vec<u8>>) {
        for rec in split.split(|&b| b == b'\n').filter(|r| !r.is_empty()) {
            emit.emit(rec[..rec.len().min(3)].to_vec(), rec.to_vec());
        }
    }

    fn reduce(&self, _k: &Vec<u8>, rec: Vec<u8>) -> Vec<u8> {
        rec
    }

    fn spill_codec(&self) -> Option<PairCodec<Vec<u8>, Vec<u8>>> {
        // `&Vec` is forced by `PairCodec`'s fn-pointer signature.
        #[allow(clippy::ptr_arg)]
        fn encode(key: &Vec<u8>, rec: &Vec<u8>, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
            buf.extend_from_slice(key);
            buf.extend_from_slice(rec);
        }
        fn decode(rec: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
            let klen = u32::from_le_bytes(rec.get(..4)?.try_into().ok()?) as usize;
            Some((rec.get(4..4 + klen)?.to_vec(), rec.get(4 + klen..)?.to_vec()))
        }
        #[allow(clippy::ptr_arg)]
        fn size_hint(key: &Vec<u8>, rec: &Vec<u8>) -> usize {
            2 * std::mem::size_of::<Vec<u8>>() + key.len() + rec.len()
        }
        Some(PairCodec { encode, decode, size_hint })
    }
}

fn base_config() -> JobConfig {
    JobConfig {
        map_workers: 3,
        reduce_workers: 2,
        split_bytes: 16,
        merge: MergeMode::PWay { ways: 4 },
        ..JobConfig::default()
    }
}

fn budgeted_config(budget: u64, store: &MemRunStore) -> JobConfig {
    let mut config = base_config();
    config.memory_budget = Some(budget);
    config.spill_store = Some(Arc::new(store.clone()));
    config
}

/// Newline text over a small alphabet so keys collide and fold.
fn arb_text() -> impl Strategy<Value = Vec<u8>> {
    vec(vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b' ')], 0..30), 0..60).prop_map(
        |lines| {
            let mut out = Vec::new();
            for l in lines {
                out.extend_from_slice(&l);
                out.push(b'\n');
            }
            out
        },
    )
}

/// Enough distinct words that any byte-scale budget forces spills.
fn wide_corpus() -> Vec<u8> {
    let mut text = Vec::new();
    for i in 0..400u32 {
        text.extend_from_slice(
            format!("word{:04} common{} word{:04}\n", i, i % 7, i / 2).as_bytes(),
        );
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn budgeted_wordcount_matches_unbounded(data in arb_text(), budget in 1u64..4096) {
        let unbounded = Job::new(SpillingWordCount).config(base_config()).run(Input::stream(MemSource::from(data.clone()))).unwrap();
        let store = MemRunStore::new();
        let spilled = Job::new(SpillingWordCount).config(budgeted_config(budget, &store)).run(Input::stream(MemSource::from(data))).unwrap();
        prop_assert_eq!(spilled.sorted_pairs(), unbounded.sorted_pairs());
        prop_assert!(store.is_empty(), "run files must be deleted after the merge");
    }

    #[test]
    fn budgeted_sort_matches_unbounded(data in arb_text(), budget in 1u64..4096) {
        let unbounded = Job::new(MiniSort).config(base_config()).run(Input::stream(MemSource::from(data.clone()))).unwrap();
        let store = MemRunStore::new();
        let spilled = Job::new(MiniSort).config(budgeted_config(budget, &store)).run(Input::stream(MemSource::from(data))).unwrap();
        // Duplicate keys make equal-key order path-dependent; compare
        // the full (key, record) multiset.
        let mut a = unbounded.pairs;
        let mut b = spilled.pairs;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        prop_assert!(store.is_empty(), "run files must be deleted after the merge");
    }
}

#[test]
fn tiny_budget_actually_spills_and_reports_it() {
    let store = MemRunStore::new();
    let r = Job::new(SpillingWordCount)
        .config(budgeted_config(64, &store))
        .run(Input::stream(MemSource::from(wide_corpus())))
        .unwrap();
    assert!(r.report.stats.spill_runs > 0, "64-byte budget must spill");
    assert!(r.report.stats.spill_bytes > 0);
    let json = r.report.to_json().render();
    assert!(json.contains("\"spill_runs\""), "report JSON carries spill stats: {json}");
    assert!(store.is_empty(), "run files must be deleted after the merge");
}

#[test]
fn unbudgeted_jobs_report_zero_spill() {
    let r = Job::new(SpillingWordCount)
        .config(base_config())
        .run(Input::stream(MemSource::from(wide_corpus())))
        .unwrap();
    assert_eq!(r.report.stats.spill_runs, 0);
    assert_eq!(r.report.stats.spill_bytes, 0);
}

#[test]
fn budgeted_pipeline_runtime_matches_unbounded() {
    let data = wide_corpus();
    let mut unbounded_cfg = base_config();
    unbounded_cfg.chunking = Chunking::Inter { chunk_bytes: 512 };
    let unbounded = Job::new(SpillingWordCount)
        .config(unbounded_cfg)
        .run(Input::stream(MemSource::from(data.clone())))
        .unwrap();
    let store = MemRunStore::new();
    let mut cfg = budgeted_config(128, &store);
    cfg.chunking = Chunking::Inter { chunk_bytes: 512 };
    let spilled =
        Job::new(SpillingWordCount).config(cfg).run(Input::stream(MemSource::from(data))).unwrap();
    assert!(spilled.report.stats.spill_runs > 0);
    assert_eq!(spilled.sorted_pairs(), unbounded.sorted_pairs());
    assert!(store.is_empty());
}

#[test]
fn budget_without_codec_is_rejected() {
    let mut config = base_config();
    config.memory_budget = Some(1024);
    let err = Job::new(CodeclessWordCount)
        .config(config)
        .run(Input::stream(MemSource::from(wide_corpus())))
        .unwrap_err();
    assert!(matches!(err, SupmrError::InvalidConfig { .. }), "got {err:?}");
}

#[test]
fn zero_budget_is_rejected() {
    let mut config = base_config();
    config.memory_budget = Some(0);
    let err = Job::new(SpillingWordCount)
        .config(config)
        .run(Input::stream(MemSource::from(vec![b'a'])))
        .unwrap_err();
    assert!(matches!(err, SupmrError::InvalidConfig { .. }), "got {err:?}");
}

#[test]
fn run_write_faults_surface_as_ingest_errors() {
    let store = MemRunStore::new();
    let faulty = FaultyRunStore::fail_writes_after(Arc::new(store.clone()), 0, ErrorKind::Other);
    let mut config = base_config();
    config.memory_budget = Some(64);
    config.spill_store = Some(Arc::new(faulty));
    let err = Job::new(SpillingWordCount)
        .config(config)
        .run(Input::stream(MemSource::from(wide_corpus())))
        .unwrap_err();
    assert!(matches!(err, SupmrError::Ingest { .. }), "got {err:?}");
    assert!(store.is_empty(), "partial runs must be cleaned up after a write fault");
}

#[test]
fn run_read_faults_surface_as_typed_errors_not_panics() {
    let store = MemRunStore::new();
    // Writes succeed (runs land intact), reads die partway through the
    // external merge.
    let faulty = FaultyRunStore::fail_reads_after(Arc::new(store.clone()), 32, ErrorKind::Other);
    let mut config = base_config();
    config.memory_budget = Some(64);
    config.spill_store = Some(Arc::new(faulty));
    let err = Job::new(SpillingWordCount)
        .config(config)
        .run(Input::stream(MemSource::from(wide_corpus())))
        .unwrap_err();
    assert!(
        matches!(err, SupmrError::Merge { .. } | SupmrError::Ingest { .. }),
        "read faults must come back typed, got {err:?}"
    );
    assert!(store.is_empty(), "run files must be cleaned up after a read fault");
}

/// WordCount that panics mid-map once enough input has passed, so some
/// spill runs exist when the wave dies.
struct PanicAfterSpill;

impl MapReduce for PanicAfterSpill {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        if split.contains(&b'!') {
            panic!("injected map panic");
        }
        for word in split.split(|b| b.is_ascii_whitespace()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _k: &String, acc: u64) -> u64 {
        acc
    }

    fn spill_codec(&self) -> Option<PairCodec<String, u64>> {
        SpillingWordCount.spill_codec()
    }
}

#[test]
fn map_panic_mid_spill_leaks_no_run_files() {
    let mut data = wide_corpus();
    data.extend_from_slice(b"boom!\n");
    let store = MemRunStore::new();
    let err = Job::new(PanicAfterSpill)
        .config(budgeted_config(64, &store))
        .run(Input::stream(MemSource::from(data)))
        .unwrap_err();
    assert!(matches!(err, SupmrError::TaskPanic { .. }), "got {err:?}");
    assert!(store.is_empty(), "abandoned runs must be deleted when the job dies");
}
