//! End-to-end tests of the extension features: adaptive chunk sizing
//! (the paper's future-work feedback loop), hybrid inter/intra-file
//! chunking, and N-deep prefetch. All must be observationally identical
//! to the fixed double-buffered pipeline — they reorganize scheduling,
//! never results.

use supmr::api::{Emit, MapReduce};
use supmr::chunk::AdaptiveConfig;
use supmr::combiner::Sum;
use supmr::container::HashContainer;
use supmr::runtime::{Input, Job, JobConfig};
use supmr::Chunking;
use supmr_storage::{MemFileSet, MemSource, ThrottledSource};
use supmr_workloads::{small_files_corpus, TextGen, TextGenConfig};

struct WordCount;

impl MapReduce for WordCount {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        for word in split.split(|b| b.is_ascii_whitespace()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _key: &String, acc: u64) -> u64 {
        acc
    }
}

fn config() -> JobConfig {
    JobConfig { map_workers: 3, reduce_workers: 3, split_bytes: 4096, ..JobConfig::default() }
}

fn text(bytes: usize) -> Vec<u8> {
    TextGen::new(TextGenConfig::default()).generate_bytes(17, bytes)
}

#[test]
fn adaptive_chunking_end_to_end_matches_baseline() {
    let data = text(300_000);
    let baseline = Job::new(WordCount)
        .config(config())
        .run(Input::stream(MemSource::from(data.clone())))
        .unwrap();

    let mut cfg = config();
    cfg.chunking = Chunking::Adaptive(AdaptiveConfig {
        initial_chunk_bytes: 16 * 1024,
        min_chunk_bytes: 2 * 1024,
        max_chunk_bytes: 128 * 1024,
        overhead_fraction: 0.05,
    });
    // Throttle so rounds take measurable time and the controller gets
    // meaningful feedback.
    let piped = Job::new(WordCount)
        .config(cfg)
        .run(Input::stream(ThrottledSource::new(MemSource::from(data), 8.0 * 1024.0 * 1024.0)))
        .unwrap();
    assert_eq!(piped.sorted_pairs(), baseline.sorted_pairs());
    assert!(piped.report.stats.ingest_chunks > 1);
    assert!(piped.report.timings.is_fused());
}

#[test]
fn adaptive_requires_depth_one() {
    let mut cfg = config();
    cfg.chunking = Chunking::Adaptive(AdaptiveConfig::default());
    cfg.prefetch_depth = 4;
    let err = Job::new(WordCount)
        .config(cfg)
        .run(Input::stream(MemSource::from(vec![1u8])))
        .expect_err("adaptive + deep prefetch must be rejected");
    assert!(matches!(err, supmr::SupmrError::InvalidConfig { .. }), "{err:?}");
    assert_eq!(err.io_kind(), None);
}

#[test]
fn hybrid_chunking_end_to_end_matches_baseline() {
    // Mixed directory: small files plus one big file.
    let mut files = small_files_corpus(8, 6, 3_000);
    files.insert(3, text(60_000)); // 20x the target
    let baseline = Job::new(WordCount)
        .config(config())
        .run(Input::files(MemFileSet::new(files.clone())))
        .unwrap();

    let mut cfg = config();
    cfg.chunking = Chunking::Hybrid { chunk_bytes: 8_000 };
    let piped = Job::new(WordCount).config(cfg).run(Input::files(MemFileSet::new(files))).unwrap();
    assert_eq!(piped.sorted_pairs(), baseline.sorted_pairs());
    // The big file alone forces more chunks than intra-file grouping of
    // 7 files would produce.
    assert!(piped.report.stats.ingest_chunks >= 8, "chunks = {}", piped.report.stats.ingest_chunks);
}

#[test]
fn prefetch_depths_agree_and_count_one_ingest_thread() {
    let data = text(200_000);
    let run_with_depth = |depth: usize| {
        let mut cfg = config();
        cfg.chunking = Chunking::Inter { chunk_bytes: 16 * 1024 };
        cfg.prefetch_depth = depth;
        Job::new(WordCount).config(cfg).run(Input::stream(MemSource::from(data.clone()))).unwrap()
    };
    let d1 = run_with_depth(1);
    let d2 = run_with_depth(2);
    let d8 = run_with_depth(8);
    assert_eq!(d1.sorted_pairs(), d2.sorted_pairs());
    assert_eq!(d1.sorted_pairs(), d8.sorted_pairs());
    for r in [&d1, &d2, &d8] {
        assert_eq!(r.report.stats.ingest_chunks, d1.report.stats.ingest_chunks);
        assert_eq!(r.report.stats.bytes_ingested, data.len() as u64);
        assert!(r.report.timings.is_fused());
    }
    // Depth 1 spawns one ingest thread per round; deeper prefetch uses
    // a single long-lived one.
    assert!(d1.report.stats.threads_spawned > d8.report.stats.threads_spawned);
}

#[test]
fn zero_prefetch_depth_rejected() {
    let mut cfg = config();
    cfg.chunking = Chunking::Inter { chunk_bytes: 1024 };
    cfg.prefetch_depth = 0;
    assert!(Job::new(WordCount)
        .config(cfg)
        .run(Input::stream(MemSource::from(vec![1u8])))
        .is_err());
}

#[test]
fn hybrid_with_zero_target_rejected() {
    let mut cfg = config();
    cfg.chunking = Chunking::Hybrid { chunk_bytes: 0 };
    assert!(Job::new(WordCount).config(cfg).run(Input::files(MemFileSet::new(vec![]))).is_err());
}

#[test]
fn adaptive_bad_bounds_rejected() {
    let mut cfg = config();
    cfg.chunking = Chunking::Adaptive(AdaptiveConfig {
        initial_chunk_bytes: 1,
        min_chunk_bytes: 10,
        max_chunk_bytes: 100,
        overhead_fraction: 0.05,
    });
    assert!(Job::new(WordCount)
        .config(cfg)
        .run(Input::stream(MemSource::from(vec![1u8])))
        .is_err());
}
