//! The Fig. 7 case study in miniature: ingest from a (simulated) HDFS
//! cluster — 32 datanodes with fast disks behind one slow shared link —
//! and observe that the pipeline raises utilization but barely moves
//! the total, because ingest dwarfs the map phase.
//!
//! ```text
//! cargo run --release --example hdfs_ingest
//! ```

use supmr::runtime::{Input, Job, JobConfig};
use supmr::Chunking;
use supmr_apps::WordCount;
use supmr_metrics::PhaseTimings;
use supmr_storage::{DataSource, HdfsConfig, HdfsSource, MemSource};
use supmr_workloads::{TextGen, TextGenConfig};

fn main() {
    let payload = TextGen::new(TextGenConfig::default()).generate_bytes(5, 6 * 1024 * 1024);
    let cluster = |data: Vec<u8>| {
        let src = HdfsSource::new(
            MemSource::from(data),
            HdfsConfig {
                datanodes: 32,
                node_disk_rate: 100.0 * 1024.0 * 1024.0, // fast disks...
                link_rate: 8.0 * 1024.0 * 1024.0,        // ...slow shared link
                block_size: 128 * 1024,
            },
        );
        println!("  source: {}", src.describe());
        Input::stream(src)
    };

    let base = JobConfig { map_workers: 4, reduce_workers: 4, ..JobConfig::default() };

    println!("original runtime: copy everything over the link, then compute");
    let original =
        Job::new(WordCount::new()).config(base.clone()).run(cluster(payload.clone())).unwrap();

    println!("SupMR: 512KB ingest chunks overlap the copy");
    let mut config = base;
    config.chunking = Chunking::Inter { chunk_bytes: 512 * 1024 };
    let supmr = Job::new(WordCount::new()).config(config).run(cluster(payload)).unwrap();

    assert_eq!(original.sorted_pairs(), supmr.sorted_pairs());

    println!("\n{}", PhaseTimings::table_header());
    println!("{}", original.report.timings.table_row("none"));
    println!("{}", supmr.report.timings.table_row("512KB"));
    let saved =
        original.report.timings.total().as_secs_f64() - supmr.report.timings.total().as_secs_f64();
    println!(
        "\nspeedup only {saved:.2}s on a {:.1}s job — the paper's Conclusion 4: with an \
         ingest-bound job there is little map work to overlay",
        original.report.timings.total().as_secs_f64()
    );
}
