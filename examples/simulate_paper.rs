//! One-shot reproduction of every headline number in the paper via the
//! discrete-event simulator (paper-scale inputs on the paper's testbed).
//! For the full tables, charts, and CSVs use the dedicated harness
//! binaries (`cargo run -p supmr-bench --bin table2` / `fig1` / …).
//!
//! ```text
//! cargo run --release --example simulate_paper
//! ```

use supmr_metrics::Phase;
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec, PipelineParams};

fn main() {
    println!("machine: 32 hardware contexts, RAID-0 primary storage, shared memory bus\n");

    // Word count: ingest bottleneck.
    let wc = AppProfile::word_count_155gb();
    let m = MachineSpec::paper_testbed(wc.disk_bandwidth);
    let wc_none = simulate(JobModel::Original, &wc, &m, MachineSpec::DISK);
    let wc_1g =
        simulate(JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }), &wc, &m, MachineSpec::DISK);
    let wc_50g =
        simulate(JobModel::SupMr(PipelineParams { chunk_bytes: 50e9 }), &wc, &m, MachineSpec::DISK);
    println!("word count 155GB:");
    println!("  original        {:7.2}s   (paper 471.75s)", wc_none.total_secs());
    println!(
        "  supmr 1GB       {:7.2}s   (paper 407.58s)  speedup {:.2}x (paper 1.16x)",
        wc_1g.total_secs(),
        wc_none.total_secs() / wc_1g.total_secs()
    );
    println!(
        "  supmr 50GB      {:7.2}s   (paper 429.76s)  speedup {:.2}x (paper 1.10x)",
        wc_50g.total_secs(),
        wc_none.total_secs() / wc_50g.total_secs()
    );

    // Sort: merge bottleneck.
    let sort = AppProfile::sort_60gb();
    let m = MachineSpec::paper_testbed(sort.disk_bandwidth);
    let s_none = simulate(JobModel::Original, &sort, &m, MachineSpec::DISK);
    let s_1g = simulate(
        JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
        &sort,
        &m,
        MachineSpec::DISK,
    );
    let omp = simulate(JobModel::OpenMp, &sort, &m, MachineSpec::DISK);
    println!("\nsort 60GB:");
    println!(
        "  original        {:7.2}s   (paper 397.31s), merge {:.2}s (paper 191.23s)",
        s_none.total_secs(),
        s_none.timings.phase(Phase::Merge).as_secs_f64()
    );
    println!(
        "  supmr 1GB       {:7.2}s   (paper 272.58s), merge {:.2}s (paper 61.14s)",
        s_1g.total_secs(),
        s_1g.timings.phase(Phase::Merge).as_secs_f64()
    );
    println!(
        "  merge speedup   {:7.2}x   (paper 3.12x); total speedup {:.2}x (paper 1.46x)",
        s_none.timings.phase(Phase::Merge).as_secs_f64()
            / s_1g.timings.phase(Phase::Merge).as_secs_f64(),
        s_none.total_secs() / s_1g.total_secs()
    );
    println!(
        "  openmp          {:7.2}s   -> {:.0}s slower time-to-result (paper: 192s slower)",
        omp.total_secs(),
        omp.total_secs() - s_none.total_secs()
    );

    // HDFS case study.
    let hdfs = AppProfile::word_count_30gb_hdfs();
    let m = MachineSpec::paper_testbed_hdfs();
    let h_none = simulate(JobModel::Original, &hdfs, &m, MachineSpec::NET);
    let h_1g =
        simulate(JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }), &hdfs, &m, MachineSpec::NET);
    println!("\nword count 30GB over 1GbE HDFS:");
    println!(
        "  original {:.1}s vs supmr {:.1}s -> {:.1}s saved (paper: ~7s despite full overlap)",
        h_none.total_secs(),
        h_1g.total_secs(),
        h_none.total_secs() - h_1g.total_secs()
    );

    println!("\nutilization (mean busy %):");
    println!(
        "  wc original {:.0}%, supmr 1GB {:.0}%, supmr 50GB {:.0}%  (paper: +50-100% with chunks)",
        wc_none.report.trace.mean_busy_utilization(),
        wc_1g.report.trace.mean_busy_utilization(),
        wc_50g.report.trace.mean_busy_utilization()
    );
}
