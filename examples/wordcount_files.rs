//! Word count over a directory of many small files (the Hadoop word
//! count input shape) using **intra-file chunking**: several files
//! coalesce into each ingest chunk, exactly as §III-A of the paper
//! describes — including the short final chunk.
//!
//! ```text
//! cargo run --release --example wordcount_files
//! ```

use supmr::runtime::{Input, Job, JobConfig};
use supmr::Chunking;
use supmr_apps::WordCount;
use supmr_metrics::PhaseTimings;
use supmr_storage::{DirFileSet, ThrottledFileSet, TokenBucket};
use supmr_workloads::files::write_corpus_dir;

fn main() {
    // Materialize a 30-file corpus on disk, ~256KB per file.
    let dir = std::env::temp_dir().join("supmr-example-corpus");
    let _ = std::fs::remove_dir_all(&dir);
    write_corpus_dir(&dir, 77, 30, 256 * 1024).expect("write corpus");
    println!("corpus: 30 files x 256KB in {}", dir.display());

    // Serve the files through a 12 MB/s "disk".
    let throttled = || {
        ThrottledFileSet::with_bucket(
            DirFileSet::open(&dir).expect("open corpus"),
            TokenBucket::new(12.0 * 1024.0 * 1024.0),
        )
    };

    let base_config = JobConfig { map_workers: 4, reduce_workers: 4, ..JobConfig::default() };

    println!("\noriginal runtime: read all 30 files, then map...");
    let original = Job::new(WordCount::new())
        .config(base_config.clone())
        .run(Input::files(throttled()))
        .unwrap();

    // The paper's worked example: chunks of 4 files -> 8 chunks, the
    // last holding the 2 remaining files.
    println!("SupMR pipeline: intra-file chunks of 4 files...");
    let mut config = base_config;
    config.chunking = Chunking::Intra { files_per_chunk: 4 };
    let supmr = Job::new(WordCount::new()).config(config).run(Input::files(throttled())).unwrap();

    assert_eq!(original.sorted_pairs(), supmr.sorted_pairs());
    assert_eq!(supmr.report.stats.ingest_chunks, 8, "30 files / 4 per chunk = 8 chunks");

    println!("\n{}", PhaseTimings::table_header());
    println!("{}", original.report.timings.table_row("none"));
    println!("{}", supmr.report.timings.table_row("4 files"));
    println!(
        "\n{} chunks, {} map rounds, {} distinct words, speedup {:.2}x",
        supmr.report.stats.ingest_chunks,
        supmr.report.stats.map_rounds,
        supmr.report.stats.distinct_keys,
        supmr.report.timings.total_speedup_vs(&original.report.timings),
    );

    let _ = std::fs::remove_dir_all(&dir);
}
