//! TeraSort end-to-end from a real file on disk: teragen-format input,
//! inter-file chunking with CRLF boundary adjustment, unlocked
//! container, and both merge backends — the paper's sort experiment in
//! miniature.
//!
//! ```text
//! cargo run --release --example terasort_pipeline
//! ```

use supmr::runtime::{Input, Job, JobConfig, JobResult, MergeMode};
use supmr::Chunking;
use supmr_apps::{sort::validate_sorted_output, terasort_pipeline, TeraSort};
use supmr_metrics::PhaseTimings;
use supmr_storage::{FileSource, ThrottledSource};
use supmr_workloads::TeraGen;

fn main() {
    // 4MB of teragen records written to a real file.
    let records = 40_000u64;
    let gen = TeraGen::new(2024, records);
    let path = std::env::temp_dir().join("supmr-example-teragen.dat");
    gen.write_to(&path).expect("write teragen input");
    println!(
        "input: {} records ({} MB) at {}",
        records,
        gen.total_bytes() / (1024 * 1024),
        path.display()
    );

    let open_disk = || {
        // 16 MB/s "RAID".
        ThrottledSource::new(FileSource::open(&path).expect("open input"), 16.0 * 1024.0 * 1024.0)
    };

    let run = |label: &str, chunking: Chunking, merge: MergeMode| -> JobResult<Vec<u8>, Vec<u8>> {
        let config = JobConfig {
            map_workers: 4,
            reduce_workers: 4,
            split_bytes: 128 * 1024,
            record_format: TeraSort::record_format(),
            chunking,
            merge,
            ..JobConfig::default()
        };
        println!("running {label}...");
        Job::new(TeraSort::new())
            .config(config)
            .run(Input::stream(open_disk()))
            .expect("sort failed")
    };

    let baseline =
        run("original + iterative 2-way merge", Chunking::None, MergeMode::PairwiseRounds);
    let supmr = run(
        "SupMR: 512KB ingest chunks + p-way merge",
        Chunking::Inter { chunk_bytes: 512 * 1024 },
        MergeMode::PWay { ways: 4 },
    );

    for (label, r) in [("baseline", &baseline), ("supmr", &supmr)] {
        validate_sorted_output(&r.pairs, records).unwrap_or_else(|e| panic!("{label}: {e}"));
    }
    println!("both outputs fully sorted, {} records each", records);

    println!("\n{}", PhaseTimings::table_header());
    println!("{}", baseline.report.timings.table_row("none"));
    println!("{}", supmr.report.timings.table_row("512KB"));
    println!(
        "\nmerge work: baseline {} rounds / {} elements moved; supmr {} round / {} elements moved",
        baseline.report.stats.merge_rounds,
        baseline.report.stats.merge_elements_moved,
        supmr.report.stats.merge_rounds,
        supmr.report.stats.merge_elements_moved,
    );
    println!(
        "total speedup {:.2}x",
        supmr.report.timings.total_speedup_vs(&baseline.report.timings)
    );

    // The same sort as a two-stage partition→sort Pipeline: identical
    // output, but the keyed records stream between the stages as framed
    // bytes instead of materializing a pair vector.
    println!("\nrunning two-stage partition→sort pipeline...");
    let config = JobConfig {
        map_workers: 4,
        reduce_workers: 4,
        split_bytes: 128 * 1024,
        chunking: Chunking::Inter { chunk_bytes: 512 * 1024 },
        merge: MergeMode::PWay { ways: 4 },
        ..JobConfig::default()
    };
    let piped =
        terasort_pipeline(Input::stream(open_disk()), config).expect("pipeline sort failed");
    validate_sorted_output(&piped.pairs, records).expect("pipeline output sorted");
    assert_eq!(piped.pairs, supmr.pairs, "pipeline output matches the single job");
    let handoff = piped.report.stages[0].handoff.expect("partition stage hands off");
    println!(
        "pipeline matches the single job: {} records; hand-off {} frames / {} bytes, \
         {} pairs materialized between the stages",
        records, handoff.pairs, handoff.bytes, handoff.materialized_pairs
    );

    let _ = std::fs::remove_file(&path);
}
