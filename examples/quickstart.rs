//! Quickstart: define a MapReduce job, run it on the original runtime
//! and on the SupMR ingest chunk pipeline, compare phase breakdowns.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use supmr::api::{Emit, MapReduce};
use supmr::combiner::Sum;
use supmr::container::HashContainer;
use supmr::runtime::{Input, Job, JobConfig, MergeMode};
use supmr::Chunking;
use supmr_metrics::PhaseTimings;
use supmr_storage::{MemSource, ThrottledSource};
use supmr_workloads::{TextGen, TextGenConfig};

/// The classic: count words.
struct WordCount;

impl MapReduce for WordCount {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        for word in split.split(|b| !b.is_ascii_alphanumeric()) {
            if !word.is_empty() {
                emit.emit(String::from_utf8_lossy(word).into_owned(), 1);
            }
        }
    }

    fn reduce(&self, _key: &String, count: u64) -> u64 {
        count
    }
}

fn main() {
    // 8MB of Zipf text served by a "disk" throttled to 16 MB/s, so the
    // ingest phase is visible like on the paper's RAID.
    let corpus = TextGen::new(TextGenConfig::default()).generate_bytes(1, 8 * 1024 * 1024);
    let disk = |data: Vec<u8>| {
        Input::stream(ThrottledSource::new(MemSource::from(data), 16.0 * 1024.0 * 1024.0))
    };

    let mut config = JobConfig { merge: MergeMode::PWay { ways: 4 }, ..JobConfig::default() };

    println!("running word count on the ORIGINAL runtime (ingest, then map)...");
    let original = Job::new(WordCount).config(config.clone()).run(disk(corpus.clone())).unwrap();

    println!("running word count on the SUPMR PIPELINE (1MB ingest chunks)...");
    config.chunking = Chunking::Inter { chunk_bytes: 1024 * 1024 };
    let supmr = Job::new(WordCount).config(config).run(disk(corpus)).unwrap();

    assert_eq!(original.sorted_pairs(), supmr.sorted_pairs(), "identical results");

    println!("\n{}", PhaseTimings::table_header());
    println!("{}", original.report.timings.table_row("none"));
    println!("{}", supmr.report.timings.table_row("1MB"));
    println!(
        "\nspeedup {:.2}x over {} ingest chunks / {} map rounds",
        supmr.report.timings.total_speedup_vs(&original.report.timings),
        supmr.report.stats.ingest_chunks,
        supmr.report.stats.map_rounds,
    );

    let mut top: Vec<(String, u64)> = supmr.pairs.clone();
    top.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("\ntop words:");
    for (word, count) in top.iter().take(5) {
        println!("  {word:<12} {count}");
    }
}
