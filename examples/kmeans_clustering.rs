//! Iterative MapReduce: kmeans over generated blobs, one SupMR job per
//! assignment pass, with the input served by a slow "device" wrapped in
//! a [`supmr_storage::CachedSource`] — the first pass pays the ingest
//! bottleneck, every later pass hits RAM (the related-work caching idea
//! of §VII applied to an iterative driver).
//!
//! ```text
//! cargo run --release --example kmeans_clustering
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;
use supmr::runtime::{Input, JobConfig};
use supmr::Chunking;
use supmr_apps::kmeans::run_kmeans;
use supmr_storage::{CachedSource, DataSource, MemSource, ThrottledSource};
use supmr_workloads::points::{clustered_points, true_centers, PointsConfig};

/// A `DataSource` view over shared cached bytes, so every iteration's
/// `Input` reads the same warm cache.
struct SharedCache(Arc<Mutex<CachedSource<ThrottledSource<MemSource>>>>);

impl DataSource for SharedCache {
    fn len(&self) -> u64 {
        self.0.lock().unwrap().len()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().read_at(offset, buf)
    }

    fn describe(&self) -> String {
        self.0.lock().unwrap().describe()
    }
}

fn main() {
    let pc = PointsConfig { clusters: 5, points_per_cluster: 4000, ..Default::default() };
    let corpus = clustered_points(2026, &pc);
    println!(
        "{} points in {} blobs ({} KB of 'x y' lines), device throttled to 8 MB/s",
        pc.clusters * pc.points_per_cluster,
        pc.clusters,
        corpus.len() / 1024
    );

    let cache = Arc::new(Mutex::new(CachedSource::new(ThrottledSource::new(
        MemSource::from(corpus),
        8.0 * 1024.0 * 1024.0,
    ))));

    let config = JobConfig {
        map_workers: 4,
        reduce_workers: 2,
        split_bytes: 64 * 1024,
        chunking: Chunking::Inter { chunk_bytes: 256 * 1024 },
        ..JobConfig::default()
    };

    // Forgy initialization: k points sampled evenly through the input.
    let init: Vec<(f64, f64)> = {
        let warm = cache.lock().unwrap().cached().expect("cache input");
        let lines: Vec<&[u8]> = warm.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
        (0..pc.clusters)
            .map(|i| {
                // The generator interleaves blobs round-robin, so
                // consecutive lines visit each blob once — k consecutive
                // samples give one seed per blob (deterministic Forgy).
                let line = lines[i + pc.clusters * 8];
                let s = std::str::from_utf8(line).expect("utf8 line");
                let mut it = s.split(' ');
                (it.next().unwrap().parse().expect("x"), it.next().unwrap().parse().expect("y"))
            })
            .collect()
    };
    let t0 = Instant::now();
    let cache_for_runs = Arc::clone(&cache);
    let result = run_kmeans(
        move || Ok(Input::stream(SharedCache(Arc::clone(&cache_for_runs)))),
        init,
        &config,
        50,
        1e-6,
    )
    .expect("kmeans failed");
    let elapsed = t0.elapsed();

    println!(
        "\nconverged: {} after {} iterations in {:.2}s (cache {})",
        result.converged,
        result.iterations,
        elapsed.as_secs_f64(),
        if cache.lock().unwrap().is_cached() { "warm after pass 1" } else { "never warmed" },
    );
    println!("\nrecovered centroids vs true centers:");
    let truth = true_centers(&pc);
    for (i, (x, y)) in result.centroids.iter().enumerate() {
        let nearest = truth
            .iter()
            .map(|&(tx, ty)| ((x - tx).powi(2) + (y - ty).powi(2)).sqrt())
            .fold(f64::INFINITY, f64::min);
        println!("  centroid {i}: ({x:7.3}, {y:7.3})   distance to nearest truth: {nearest:.3}");
    }
}
