#!/usr/bin/env bash
# Regenerate every table, figure, and ablation of the SupMR reproduction.
# Outputs: terminal charts/tables + CSV series under results/ (override
# with SUPMR_RESULTS=<dir>).
set -euo pipefail
cd "$(dirname "$0")"

echo "building (release)..."
cargo build --release --workspace --quiet

run() {
    echo
    echo "################################################################"
    echo "## $*"
    echo "################################################################"
    cargo run --release --quiet -p supmr-bench --bin "$@"
}

run table2 -- --real        # Table II, simulated + real scaled
run fig1                    # Fig. 1  original sort trace (step curve)
run fig2_timeline           # Fig. 2/4 measured pipeline round Gantt
run fig3                    # Fig. 3  OpenMP comparator
run fig5                    # Fig. 5a-c chunk-size traces (simulated)
run fig5_real               # Fig. 5  on real threads
run fig6                    # Fig. 6  SupMR sort trace
run fig7 -- --real          # Fig. 7  HDFS case study
run chunk_sweep             # chunk-size ablation (+ energy)
run ablations               # prefetch depth / adaptive / merge backend
run scaleout_compare        # SVIII scale-up vs scale-out comparison

echo
echo "all experiment outputs written to ${SUPMR_RESULTS:-results}/"
