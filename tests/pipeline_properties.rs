//! Property tests for the two-stage partition→sort pipeline: whatever
//! the corpus, chunking, merge fan-in, or memory budget,
//! [`terasort_pipeline`] must produce output byte-identical to the
//! hand-wired single-stage [`TeraSort`] job — with the inter-stage
//! hand-off streamed (zero materialized pairs), even when the budget
//! forces spills mid-pipeline.

use proptest::prelude::*;
use supmr::runtime::{Input, Job, JobConfig, MergeMode};
use supmr::{Chunking, TraceLevel};
use supmr_apps::{sort::validate_sorted_output, terasort_pipeline, TeraSort};
use supmr_metrics::{chrome::to_chrome_json, EventKind, SpanKey};
use supmr_storage::MemSource;
use supmr_workloads::TeraGen;

fn sort_config(chunk_bytes: u64, ways: usize) -> JobConfig {
    JobConfig {
        map_workers: 2,
        reduce_workers: 2,
        split_bytes: 4 * 1024,
        record_format: TeraSort::record_format(),
        chunking: Chunking::Inter { chunk_bytes },
        merge: MergeMode::PWay { ways },
        ..JobConfig::default()
    }
}

fn corpus(seed: u64, records: u64) -> Input {
    Input::stream(MemSource::from(TeraGen::new(seed, records).generate_all()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_matches_the_single_job_for_any_corpus(
        seed in any::<u64>(),
        records in 1u64..300,
        chunk_kb in 1u64..32,
        ways in 2usize..6,
    ) {
        let config = sort_config(chunk_kb * 1024, ways);
        let single = Job::new(TeraSort::new())
            .config(config.clone())
            .run(corpus(seed, records))
            .unwrap();
        let piped = terasort_pipeline(corpus(seed, records), config).unwrap();
        prop_assert_eq!(&piped.pairs, &single.pairs, "pipeline must be byte-identical");
        validate_sorted_output(&piped.pairs, records).unwrap();
        let handoff = piped.report.stages[0].handoff.expect("partition stage hands off");
        prop_assert_eq!(handoff.pairs, records);
        prop_assert_eq!(
            handoff.materialized_pairs, 0,
            "no pair vector may exist between the stages"
        );
    }

    #[test]
    fn budgeted_pipeline_spills_and_stays_identical(
        seed in any::<u64>(),
        records in 50u64..200,
        budget_kb in 2u64..8,
    ) {
        let config = sort_config(8 * 1024, 4);
        let single = Job::new(TeraSort::new())
            .config(config.clone())
            .run(corpus(seed, records))
            .unwrap();
        let mut budgeted = config;
        budgeted.memory_budget = Some(budget_kb * 1024);
        let piped = terasort_pipeline(corpus(seed, records), budgeted).unwrap();
        prop_assert_eq!(&piped.pairs, &single.pairs, "spilling must not change the output");
        prop_assert!(
            piped.report.stats.spill_runs > 0,
            "a {budget_kb}K budget must force mid-pipeline spills"
        );
        let handoff = piped.report.stages[0].handoff.expect("partition stage hands off");
        prop_assert_eq!(
            handoff.materialized_pairs, 0,
            "the hand-off streams even out of spilled runs"
        );
    }
}

#[test]
fn pipeline_trace_carries_stage_spans() {
    let mut config = sort_config(8 * 1024, 4);
    config.trace = TraceLevel::Wave;
    let piped = terasort_pipeline(corpus(5, 300), config).unwrap();
    validate_sorted_output(&piped.pairs, 300).unwrap();

    let trace = piped.report.trace.as_ref().expect("trace requested");
    trace.validate().expect("spans nest cleanly");
    let stage_starts: Vec<u32> = trace
        .ordered_events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::StageStart { stage } => Some(stage),
            _ => None,
        })
        .collect();
    assert_eq!(stage_starts, vec![0, 1], "one span per stage, in dependency order");
    let stage_spans = trace.spans().iter().filter(|s| matches!(s.key, SpanKey::Stage(_))).count();
    assert_eq!(stage_spans, 2, "both stage spans close");

    // The Chrome export names the stage slices so they are visible in
    // a trace viewer.
    let chrome = to_chrome_json(trace);
    assert!(chrome.contains("stage 0"), "partition span exported");
    assert!(chrome.contains("stage 1"), "sort span exported");
}
