//! Workspace-level integration tests: whole-system runs that span the
//! generators, storage substrates, the runtime, the application suite,
//! and the simulator — the flows a downstream user would actually
//! exercise.

use supmr::runtime::{Input, Job, JobConfig, MergeMode};
use supmr::Chunking;
use supmr_apps::{
    sort::validate_sorted_output, Grep, Histogram, InvertedIndex, TeraSort, WordCount,
};
use supmr_metrics::{Bottleneck, Phase};
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec, PipelineParams};
use supmr_storage::{DirFileSet, FileSource, HdfsConfig, HdfsSource, MemSource, ThrottledSource};
use supmr_workloads::{
    files::write_corpus_dir, small_files_corpus, TeraGen, TextGen, TextGenConfig,
};

fn config(workers: usize) -> JobConfig {
    JobConfig {
        map_workers: workers,
        reduce_workers: workers,
        split_bytes: 64 * 1024,
        ..JobConfig::default()
    }
}

#[test]
fn wordcount_from_real_files_through_throttled_pipeline() {
    let dir = std::env::temp_dir().join("supmr-e2e-corpus");
    let _ = std::fs::remove_dir_all(&dir);
    write_corpus_dir(&dir, 5, 12, 64 * 1024).unwrap();

    let throttled = || {
        supmr_storage::ThrottledFileSet::new(
            DirFileSet::open(&dir).unwrap(),
            64.0 * 1024.0 * 1024.0,
        )
    };
    let baseline =
        Job::new(WordCount::new()).config(config(3)).run(Input::files(throttled())).unwrap();
    let mut piped_config = config(3);
    piped_config.chunking = Chunking::Intra { files_per_chunk: 5 };
    let piped =
        Job::new(WordCount::new()).config(piped_config).run(Input::files(throttled())).unwrap();

    assert_eq!(baseline.sorted_pairs(), piped.sorted_pairs());
    assert_eq!(piped.report.stats.ingest_chunks, 3); // 12 files / 5 per chunk
    assert!(baseline.report.stats.distinct_keys > 100);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn terasort_from_real_file_is_correct_and_single_merge_round() {
    let gen = TeraGen::new(99, 2_000);
    let path = std::env::temp_dir().join("supmr-e2e-teragen.dat");
    gen.write_to(&path).unwrap();

    let mut cfg = config(4);
    cfg.record_format = TeraSort::record_format();
    cfg.chunking = Chunking::Inter { chunk_bytes: 40_000 };
    cfg.merge = MergeMode::PWay { ways: 4 };
    let result = Job::new(TeraSort::new())
        .config(cfg)
        .run(Input::stream(ThrottledSource::new(
            FileSource::open(&path).unwrap(),
            128.0 * 1024.0 * 1024.0,
        )))
        .unwrap();

    validate_sorted_output(&result.pairs, 2_000).unwrap();
    assert_eq!(result.report.stats.merge_rounds, 1);
    assert_eq!(result.report.stats.bytes_ingested, gen.total_bytes());
    assert!(result.report.stats.ingest_chunks >= 4);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sort_baseline_vs_supmr_work_accounting() {
    // The merge-bottleneck claim in work units, end to end.
    let gen = TeraGen::new(7, 3_000);
    let data = gen.generate_all();
    let run = |chunking, merge| {
        let mut cfg = config(4);
        cfg.record_format = TeraSort::record_format();
        cfg.split_bytes = 20_000;
        cfg.chunking = chunking;
        cfg.merge = merge;
        Job::new(TeraSort::new())
            .config(cfg)
            .run(Input::stream(MemSource::from(data.clone())))
            .unwrap()
    };
    let baseline = run(Chunking::None, MergeMode::PairwiseRounds);
    let supmr = run(Chunking::Inter { chunk_bytes: 50_000 }, MergeMode::PWay { ways: 4 });

    assert_eq!(supmr.report.stats.merge_elements_moved, 3_000);
    // Each round re-scans the data, except that an odd run carried to
    // the next round unmerged is skipped — so the exact bound is
    // N·(rounds−1) < moved ≤ N·rounds.
    let rounds = baseline.report.stats.merge_rounds as u64;
    assert!(
        baseline.report.stats.merge_elements_moved > 3_000 * (rounds - 1)
            && baseline.report.stats.merge_elements_moved <= 3_000 * rounds,
        "baseline re-scans every round: moved {} over {} rounds",
        baseline.report.stats.merge_elements_moved,
        rounds
    );
    assert!(baseline.report.stats.merge_rounds > supmr.report.stats.merge_rounds);
    // Identical final orderings.
    assert_eq!(
        baseline.pairs.iter().map(|p| &p.0).collect::<Vec<_>>(),
        supmr.pairs.iter().map(|p| &p.0).collect::<Vec<_>>()
    );
}

#[test]
fn hdfs_source_feeds_the_pipeline() {
    let payload = TextGen::new(TextGenConfig::default()).generate_bytes(3, 512 * 1024);
    let cluster = |data: Vec<u8>| {
        HdfsSource::new(
            MemSource::from(data),
            HdfsConfig {
                datanodes: 8,
                node_disk_rate: 1e9,
                link_rate: 32.0 * 1024.0 * 1024.0,
                block_size: 64 * 1024,
            },
        )
    };
    let baseline = Job::new(WordCount::new())
        .config(config(2))
        .run(Input::stream(cluster(payload.clone())))
        .unwrap();
    let mut cfg = config(2);
    cfg.chunking = Chunking::Inter { chunk_bytes: 128 * 1024 };
    let piped =
        Job::new(WordCount::new()).config(cfg).run(Input::stream(cluster(payload))).unwrap();
    assert_eq!(baseline.sorted_pairs(), piped.sorted_pairs());
}

#[test]
fn grep_and_histogram_and_index_run_through_the_pipeline() {
    // Grep over chunked text.
    let text = TextGen::new(TextGenConfig::default()).generate_bytes(9, 256 * 1024);
    let mut cfg = config(2);
    cfg.chunking = Chunking::Inter { chunk_bytes: 32 * 1024 };
    let needle = TextGen::new(TextGenConfig::default()).words()[0].clone();
    let grep = Job::new(Grep::new(vec![needle.clone().into_bytes()]))
        .config(cfg.clone())
        .run(Input::stream(MemSource::from(text.clone())))
        .unwrap();
    assert_eq!(grep.pairs.len(), 1, "the most frequent word must appear");
    assert!(grep.pairs[0].1 > 100);

    // Histogram over fixed-width pixels.
    let pixels: Vec<u8> = (0..90_000).map(|i| (i % 256) as u8).collect();
    let mut cfg = config(2);
    cfg.record_format = Histogram::record_format();
    cfg.chunking = Chunking::Inter { chunk_bytes: 10_000 };
    let hist =
        Job::new(Histogram::new()).config(cfg).run(Input::stream(MemSource::from(pixels))).unwrap();
    let total: u64 = hist.pairs.iter().map(|(_, c)| c).sum();
    assert_eq!(total, 90_000);

    // Inverted index over doc-tagged files.
    let files: Vec<Vec<u8>> = (0..6)
        .map(|f| {
            (0..10)
                .map(|d| InvertedIndex::format_doc(f * 10 + d, "alpha beta"))
                .collect::<String>()
                .into_bytes()
        })
        .collect();
    let mut cfg = config(2);
    cfg.chunking = Chunking::Intra { files_per_chunk: 2 };
    let index = Job::new(InvertedIndex::new())
        .config(cfg)
        .run(Input::files(supmr_storage::MemFileSet::new(files)))
        .unwrap();
    let alpha = index.pairs.iter().find(|(k, _)| k == "alpha").unwrap();
    assert_eq!(alpha.1.len(), 60);
}

#[test]
fn simulator_and_real_runtime_agree_on_the_shape() {
    // The cross-check that makes the simulation credible: at a scale the
    // real runtime can execute, both must agree that (a) the pipeline
    // beats the baseline when ingest dominates, and (b) fused ingest+map
    // ≈ max(ingest, map) rather than their sum.
    // Strongly ingest-dominated so the pipeline's win is robust even on
    // a single-core debug-build machine: 4MB at 4MB/s ⇒ ≥1s of ingest
    // to hide map work under.
    let real_bytes = 4 * 1024 * 1024;
    let rate = 4.0 * 1024.0 * 1024.0;
    let corpus = TextGen::new(TextGenConfig::default()).generate_bytes(1, real_bytes);

    let throttled =
        |data: Vec<u8>| Input::stream(ThrottledSource::new(MemSource::from(data), rate));
    let base_cfg = config(2);
    let baseline =
        Job::new(WordCount::new()).config(base_cfg.clone()).run(throttled(corpus.clone())).unwrap();
    let mut piped_cfg = base_cfg;
    piped_cfg.chunking = Chunking::Inter { chunk_bytes: 256 * 1024 };
    let piped = Job::new(WordCount::new()).config(piped_cfg).run(throttled(corpus)).unwrap();

    let real_speedup = piped.report.timings.total_speedup_vs(&baseline.report.timings);
    assert!(real_speedup > 1.0, "pipeline must win on a throttled source: {real_speedup}");

    // Simulated counterpart with matching proportions.
    let profile = AppProfile {
        name: "scaled-wc",
        input_bytes: real_bytes as f64,
        map_ns_per_byte: 20.0,
        reduce_ns_per_byte: 0.1,
        merge_bytes: 0.0,
        merge_cpu_ns_per_byte: 0.0,
        sort_runs: 2,
        disk_bandwidth: rate,
        parse_ns_per_byte: 0.0,
    };
    let machine = MachineSpec {
        contexts: 2,
        devices: vec![
            supmr_sim::Device::new("disk", rate),
            supmr_sim::Device::cpu_bound("mem", 1e9),
        ],
        thread_spawn_cost: 100e-6,
    };
    let sim_base = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);
    let sim_piped = simulate(
        JobModel::SupMr(PipelineParams { chunk_bytes: 256.0 * 1024.0 }),
        &profile,
        &machine,
        MachineSpec::DISK,
    );
    let sim_speedup = sim_base.total_secs() / sim_piped.total_secs();
    assert!(sim_speedup > 1.0);

    // Fused span sanity on both sides: pipeline read+map < baseline
    // read + map sum.
    let base_sum =
        baseline.report.timings.phase(Phase::Ingest) + baseline.report.timings.phase(Phase::Map);
    let fused = piped.report.timings.fused_ingest_map().unwrap();
    assert!(fused < base_sum, "real: fused {fused:?} !< sum {base_sum:?}");
    assert!(
        sim_piped.timings.fused_ingest_map().unwrap().as_secs_f64()
            < sim_base.timings.phase(Phase::Ingest).as_secs_f64()
                + sim_base.timings.phase(Phase::Map).as_secs_f64()
    );
}

#[test]
fn throttled_ingest_classifies_as_ingest_bound() {
    // A hard storage throttle on the baseline runtime makes the serial
    // ingest phase dominate wall-clock; the classifier must say so.
    let text = TextGen::new(TextGenConfig::default()).generate_bytes(11, 512 * 1024);
    let input_len = text.len() as u64; // generator rounds up to a word boundary
    let result = Job::new(WordCount::new())
        .config(config(2))
        .run(Input::stream(ThrottledSource::new(
            MemSource::from(text),
            // 1 MiB/s → ~500ms of metered ingest, far above what CPU
            // contention can inflate the map phase to when the test
            // suite runs many-way parallel on few cores.
            1.0 * 1024.0 * 1024.0,
        )))
        .unwrap();
    let diag = result.report.diag.as_ref().expect("every job is diagnosed");
    assert_eq!(diag.verdict, Bottleneck::IngestBound, "{}", diag.render_ascii());
    assert!(diag.speedup_if_removed > 1.0);
    // The flow ledger attributed the ingested bytes.
    let ingest = diag.inputs.flows.get(supmr_metrics::FlowPhase::Ingest);
    assert_eq!(ingest.bytes, input_len, "ingest flow counts every byte");
    // Nominal 4 MiB/s plus the token bucket's initial burst: the achieved
    // rate must stay orders of magnitude below memory bandwidth.
    assert!(ingest.mb_per_sec() > 0.0 && ingest.mb_per_sec() < 64.0, "{}", ingest.mb_per_sec());
    let json = result.report.to_json().render();
    assert!(json.contains("\"supmr.diag.v1\""), "diag schema embedded in the job report");
    assert!(json.contains("\"ingest-bound\""));
}

#[test]
fn tight_memory_budget_classifies_as_memory_budget_bound() {
    let text = TextGen::new(TextGenConfig::default()).generate_bytes(12, 256 * 1024);
    let mut cfg = config(2);
    cfg.memory_budget = Some(2 * 1024); // absurdly tight: the job lives spilling
    let result =
        Job::new(WordCount::new()).config(cfg).run(Input::stream(MemSource::from(text))).unwrap();
    let diag = result.report.diag.as_ref().expect("every job is diagnosed");
    assert!(result.report.stats.spill_runs > 0, "2K budget must spill");
    assert_eq!(diag.verdict, Bottleneck::MemoryBudgetBound, "{}", diag.render_ascii());
    assert!(diag.inputs.spill_bytes > 0);
}

#[test]
fn unthrottled_in_memory_run_is_not_io_diagnosed() {
    let text = TextGen::new(TextGenConfig::default()).generate_bytes(13, 256 * 1024);
    let result = Job::new(WordCount::new())
        .config(config(2))
        .run(Input::stream(MemSource::from(text)))
        .unwrap();
    let diag = result.report.diag.as_ref().expect("every job is diagnosed");
    assert_ne!(diag.verdict, Bottleneck::IngestBound, "{}", diag.render_ascii());
    assert_ne!(diag.verdict, Bottleneck::MemoryBudgetBound, "{}", diag.render_ascii());
}

#[test]
fn generators_feed_chunkers_without_boundary_violations() {
    // Teragen output chunked at awkward sizes must reassemble exactly.
    let gen = TeraGen::new(1234, 500);
    let data = gen.generate_all();
    use supmr::chunk::{Chunker, InterFileChunker};
    for chunk_bytes in [73u64, 999, 10_001] {
        let mut chunker = InterFileChunker::new(
            MemSource::from(data.clone()),
            chunk_bytes,
            TeraSort::record_format(),
        );
        let mut rebuilt = Vec::new();
        while let Some(c) = chunker.next_chunk().unwrap() {
            assert_eq!(c.len() % 100, 0, "CRLF chunks must hold whole records");
            rebuilt.extend_from_slice(&c.data);
        }
        assert_eq!(rebuilt, data);
    }

    // Small-files corpus through intra chunking.
    let files = small_files_corpus(4, 11, 4_096);
    use supmr::chunk::IntraFileChunker;
    let mut chunker = IntraFileChunker::new(supmr_storage::MemFileSet::new(files.clone()), 4);
    let mut seen = 0;
    while let Some(c) = chunker.next_chunk().unwrap() {
        seen += c.segments.len();
    }
    assert_eq!(seen, 11);
}
