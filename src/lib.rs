//! Umbrella crate for the SupMR reproduction workspace.
//!
//! Re-exports every member crate under one name so the examples and
//! integration tests in this package (and downstream users who want a
//! single dependency) can reach the whole system:
//!
//! * [`supmr`] — the runtime (the paper's contribution).
//! * [`supmr_merge`] — merge/sort algorithms.
//! * [`supmr_storage`] — data sources and throttling.
//! * [`supmr_sim`] — the scale-up machine simulator.
//! * [`supmr_workloads`] — deterministic input generators.
//! * [`supmr_metrics`] — timers, traces, rendering.
//! * [`supmr_apps`] — the application suite.

pub use supmr;
pub use supmr_apps;
pub use supmr_merge;
pub use supmr_metrics;
pub use supmr_sim;
pub use supmr_storage;
pub use supmr_workloads;
